//===- incremental_test.cpp - Delta-update differential oracle -------------===//
//
// Part of JackEE-CPP (PLDI'20 "Frameworks and Caches" reproduction).
//
// The correctness contract of `AnalysisCell::update` (DESIGN.md §12): after
// any sequence of deltas, the live cell's fixpoint must be semantically
// identical to a cold analysis of the edited program. These tests replay
// randomized edit sequences and compare every intermediate state against
// the from-scratch baseline built by `core::applyDelta` — canonical
// points-to/call-graph/reachability dumps, the deterministic metric
// fields, and the explained entry-point set — across Datalog and solver
// worker counts.
//
//===----------------------------------------------------------------------===//

#include "core/Session.h"
#include "provenance/Explain.h"

#include "gtest/gtest.h"

#include <algorithm>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

using namespace jackee;
using namespace jackee::core;

namespace {

/// Scoped setter for one environment variable.
class EnvGuard {
public:
  EnvGuard(const char *Name, const std::string &Value) : Name(Name) {
    if (const char *Old = std::getenv(Name))
      Saved = Old;
    ::setenv(Name, Value.c_str(), 1);
  }
  ~EnvGuard() {
    if (Saved.empty())
      ::unsetenv(Name);
    else
      ::setenv(Name, Saved.c_str(), 1);
  }

private:
  const char *Name;
  std::string Saved;
};

std::string pluginName(unsigned K) {
  return "test.Plugin" + std::to_string(K);
}

/// The base application: one XML-registered servlet that exercises the
/// request API, one XML-wired bean, and one deliberately unwired class
/// (`test.Aux`) that warm (insert-only) edits can later promote to a bean.
Application editableApp() {
  Application A;
  A.Name = "editable";
  A.Populate = [](ir::Program &P, const javalib::JavaLib &L,
                  const frameworks::FrameworkLib &F) {
    auto appClass = [&](const std::string &Name, ir::TypeId Super) {
      return P.addClass(Name, ir::TypeKind::Class, Super, {}, false,
                        /*IsApplication=*/true);
    };

    ir::TypeId Store = appClass("test.Store", L.Object);
    P.addMethod(Store, "<init>", {}, ir::TypeId::invalid());
    ir::MethodBuilder Put =
        P.addMethod(Store, "put", {L.Object}, ir::TypeId::invalid());
    {
      ir::VarId V = Put.local("v", L.Object);
      Put.move(V, Put.param(0));
    }

    ir::TypeId Front = appClass("test.FrontServlet", F.HttpServlet);
    ir::FieldId FrontStore = P.addField(Front, "store", Store);
    ir::MethodBuilder DoGet = P.addMethod(
        Front, "doGet", {F.HttpServletRequest, F.HttpServletResponse},
        ir::TypeId::invalid());
    {
      ir::VarId Name = DoGet.local("name", L.String);
      ir::VarId Param = DoGet.local("param", L.String);
      ir::VarId S = DoGet.local("s", Store);
      DoGet.stringConst(Name, "id")
          .virtualCall(Param, DoGet.param(0), "getParameter", {L.String},
                       {Name})
          .load(S, DoGet.thisVar(), FrontStore)
          .virtualCall(ir::VarId::invalid(), S, "put", {L.Object}, {Param});
    }

    ir::TypeId Aux = appClass("test.Aux", L.Object);
    P.addMethod(Aux, "<init>", {}, ir::TypeId::invalid());

    return std::vector<std::pair<std::string, std::string>>{
        {"beans.xml",
         "<beans>\n"
         "  <bean id=\"store\" class=\"test.Store\"/>\n"
         "  <bean id=\"front\" class=\"test.FrontServlet\">\n"
         "    <property name=\"store\" ref=\"store\"/>\n"
         "  </bean>\n"
         "</beans>\n"},
        {"web.xml",
         "<web-app>\n"
         "  <servlet>\n"
         "    <servlet-class>test.FrontServlet</servlet-class>\n"
         "  </servlet>\n"
         "</web-app>\n"}};
  };
  return A;
}

/// The delta that toggles plugin \p K on. Even plugins are servlets (the
/// servlet.dl rule path), odd plugins are beans (the Spring glue path).
CellDelta addPlugin(unsigned K) {
  std::string Cls = pluginName(K);
  CellDelta D;
  D.AddCode = [K, Cls](ir::Program &P, const javalib::JavaLib &L,
                       const frameworks::FrameworkLib &F) {
    bool IsServlet = K % 2 == 0;
    ir::TypeId T =
        P.addClass(Cls, ir::TypeKind::Class,
                   IsServlet ? F.HttpServlet : L.Object, {}, false,
                   /*IsApplication=*/true);
    P.addMethod(T, "<init>", {}, ir::TypeId::invalid());
    if (IsServlet) {
      ir::MethodBuilder DoGet = P.addMethod(
          T, "doGet", {F.HttpServletRequest, F.HttpServletResponse},
          ir::TypeId::invalid());
      ir::VarId Name = DoGet.local("name", L.String);
      ir::VarId Param = DoGet.local("param", L.String);
      DoGet.stringConst(Name, "key").virtualCall(
          Param, DoGet.param(0), "getParameter", {L.String}, {Name});
    } else {
      ir::MethodBuilder Run =
          P.addMethod(T, "run", {}, ir::TypeId::invalid());
      ir::VarId V = Run.local("v", L.String);
      Run.stringConst(V, Cls);
    }
  };
  if (K % 2 == 0)
    D.AddConfigs.push_back(
        {"web-p" + std::to_string(K) + ".xml",
         "<web-app>\n  <servlet>\n    <servlet-class>" + Cls +
             "</servlet-class>\n  </servlet>\n</web-app>\n"});
  else
    D.AddConfigs.push_back(
        {"beans-p" + std::to_string(K) + ".xml",
         "<beans>\n  <bean id=\"p" + std::to_string(K) + "\" class=\"" +
             Cls + "\"/>\n</beans>\n"});
  return D;
}

/// The delta that toggles plugin \p K off again.
CellDelta removePlugin(unsigned K) {
  CellDelta D;
  D.RetractClasses.push_back(pluginName(K));
  D.RetractConfigs.push_back((K % 2 == 0 ? "web-p" : "beans-p") +
                             std::to_string(K) + ".xml");
  return D;
}

/// An insert-only config edit: wire `test.Aux` as a bean. The first such
/// edit takes the warm (no-reset) update path; later ones reset because
/// the class then owns a bean object.
CellDelta wireAux(unsigned Serial) {
  CellDelta D;
  D.AddConfigs.push_back(
      {"aux" + std::to_string(Serial) + ".xml",
       "<beans>\n  <bean id=\"aux" + std::to_string(Serial) +
           "\" class=\"test.Aux\"/>\n</beans>\n"});
  return D;
}

/// Sorted root atoms of the entry-point explanation — id-comparable
/// between the live cell and the scratch baseline because `applyDelta`
/// reproduces the incremental path's entity-id assignment exactly.
std::vector<std::string> entryPointAtoms(AnalysisCell &Cell) {
  std::string Error;
  std::vector<std::string> Atoms;
  for (const provenance::DerivationNode &Tree :
       Cell.explain("ExercisedEntryPoint", Error))
    Atoms.push_back(Tree.Atom);
  EXPECT_TRUE(Error.empty()) << Error;
  std::sort(Atoms.begin(), Atoms.end());
  return Atoms;
}

/// The deterministic (thread- and path-invariant) metric fields.
std::string semanticMetrics(const Metrics &M) {
  return "reach=" + std::to_string(M.AppReachableMethods) + "/" +
         std::to_string(M.AppConcreteMethods) +
         " vpt=" + std::to_string(M.VptTuplesTotal) +
         " vptju=" + std::to_string(M.VptTuplesJavaUtil) +
         " cg=" + std::to_string(M.CallGraphEdges) +
         " poly=" + std::to_string(M.AppPolyVCalls) +
         " casts=" + std::to_string(M.AppCasts) + "/" +
         std::to_string(M.AppMayFailCasts) +
         " beans=" + std::to_string(M.BeansCreated) +
         " inject=" + std::to_string(M.InjectionsApplied) +
         " entry=" + std::to_string(M.EntryPointsExercised);
}

/// Replays \p Edits edits drawn from \p Rng against one live cell and
/// checks every intermediate state against a cold cell of the accumulated
/// delta sequence.
void runDifferential(std::mt19937 &Rng, unsigned Edits) {
  SessionOptions Options;
  Options.SnapshotCache = false; // scratch cells must not share state
  AnalysisSession Session(Options);

  CellResult Live = Session.open(editableApp(), AnalysisKind::Mod2ObjH);
  ASSERT_TRUE(Live.ok()) << Live.error().Message;

  std::vector<CellDelta> Applied;
  bool PluginOn[4] = {false, false, false, false};
  unsigned AuxSerial = 0;

  for (unsigned Step = 0; Step != Edits; ++Step) {
    unsigned Choice = Rng() % 5;
    CellDelta Delta;
    if (Choice < 4) {
      Delta = PluginOn[Choice] ? removePlugin(Choice) : addPlugin(Choice);
      PluginOn[Choice] = !PluginOn[Choice];
    } else {
      Delta = wireAux(++AuxSerial);
    }
    Applied.push_back(Delta);

    AnalysisResult Updated = Live->update(Delta);
    ASSERT_TRUE(Updated.ok()) << Updated.error().Message;

    CellResult Scratch = Session.open(applyDelta(editableApp(), Applied),
                                      AnalysisKind::Mod2ObjH);
    ASSERT_TRUE(Scratch.ok()) << Scratch.error().Message;

    SCOPED_TRACE("step " + std::to_string(Step + 1));
    EXPECT_EQ(Live->canonicalDigest(), Scratch->canonicalDigest());
    EXPECT_EQ(semanticMetrics(Live->metrics()),
              semanticMetrics(Scratch->metrics()));
    EXPECT_EQ(entryPointAtoms(*Live), entryPointAtoms(*Scratch));
  }
  EXPECT_EQ(Live->updateCount(), Edits);
}

class IncrementalDifferential
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>> {};

TEST_P(IncrementalDifferential, RandomEditSequenceMatchesFromScratch) {
  auto [Seed, Threads] = GetParam();
  EnvGuard DatalogEnv("JACKEE_THREADS", std::to_string(Threads));
  EnvGuard SolverEnv("JACKEE_SOLVER_THREADS", std::to_string(Threads));
  std::mt19937 Rng(Seed);
  runDifferential(Rng, /*Edits=*/5);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndThreads, IncrementalDifferential,
    ::testing::Combine(::testing::Values(1u, 2u, 3u),
                       ::testing::Values(1u, 2u, 8u)),
    [](const ::testing::TestParamInfo<std::tuple<unsigned, unsigned>> &I) {
      return "seed" + std::to_string(std::get<0>(I.param)) + "x" +
             std::to_string(std::get<1>(I.param)) + "threads";
    });

/// The scripted sequence the CI incremental-smoke job replays, pinned
/// here too so a CI-only breakage has a local repro.
TEST(IncrementalScripted, WarmInsertOnlyEditMatchesFromScratch) {
  AnalysisSession Session;
  CellResult Live = Session.open(editableApp(), AnalysisKind::TwoObjH);
  ASSERT_TRUE(Live.ok()) << Live.error().Message;
  uint64_t ColdVpt = Live->metrics().VptTuplesTotal;

  std::vector<CellDelta> Applied{wireAux(1)};
  AnalysisResult Updated = Live->update(Applied[0]);
  ASSERT_TRUE(Updated.ok()) << Updated.error().Message;
  EXPECT_GE(Updated->VptTuplesTotal, ColdVpt); // insert-only: monotone

  AnalysisSession Fresh;
  CellResult Scratch =
      Session.open(applyDelta(editableApp(), Applied), AnalysisKind::TwoObjH);
  ASSERT_TRUE(Scratch.ok()) << Scratch.error().Message;
  EXPECT_EQ(Live->canonicalDigest(), Scratch->canonicalDigest());
  EXPECT_EQ(semanticMetrics(Live->metrics()),
            semanticMetrics(Scratch->metrics()));
}

TEST(IncrementalScripted, RetractionRemovesDerivedEntryPoints) {
  AnalysisSession Session;
  CellResult Live = Session.open(editableApp(), AnalysisKind::CI);
  ASSERT_TRUE(Live.ok()) << Live.error().Message;
  uint32_t BaseEntries = Live->metrics().EntryPointsExercised;

  ASSERT_TRUE(Live->update(addPlugin(0)).ok());
  EXPECT_GT(Live->metrics().EntryPointsExercised, BaseEntries);

  ASSERT_TRUE(Live->update(removePlugin(0)).ok());
  EXPECT_EQ(Live->metrics().EntryPointsExercised, BaseEntries);

  std::string Digest = Live->canonicalDigest();
  AnalysisSession Fresh;
  CellResult Cold = Fresh.open(editableApp(), AnalysisKind::CI);
  ASSERT_TRUE(Cold.ok()) << Cold.error().Message;
  // Add+remove must land exactly back on the unedited program's fixpoint.
  EXPECT_EQ(Digest, Cold->canonicalDigest());
}

TEST(IncrementalErrors, UnknownRetractionsLeaveTheCellUsable) {
  AnalysisSession Session;
  CellResult Live = Session.open(editableApp(), AnalysisKind::CI);
  ASSERT_TRUE(Live.ok()) << Live.error().Message;
  std::string Digest = Live->canonicalDigest();

  CellDelta BadClass;
  BadClass.RetractClasses.push_back("test.DoesNotExist");
  AnalysisResult R1 = Live->update(BadClass);
  ASSERT_FALSE(R1.ok());
  EXPECT_EQ(R1.error().Kind, AnalysisErrorKind::InvalidDelta);

  CellDelta BadConfig;
  BadConfig.RetractConfigs.push_back("missing.xml");
  AnalysisResult R2 = Live->update(BadConfig);
  ASSERT_FALSE(R2.ok());
  EXPECT_EQ(R2.error().Kind, AnalysisErrorKind::InvalidDelta);

  CellDelta BadXml;
  BadXml.AddConfigs.push_back({"broken.xml", "<beans"});
  AnalysisResult R3 = Live->update(BadXml);
  ASSERT_FALSE(R3.ok());
  EXPECT_EQ(R3.error().Kind, AnalysisErrorKind::ConfigParse);

  // Validation failures must not have touched the fixpoint.
  EXPECT_EQ(Live->canonicalDigest(), Digest);
  EXPECT_EQ(Live->updateCount(), 0u);
  EXPECT_TRUE(Live->update(CellDelta{}).ok()); // empty delta: no-op
}

} // namespace
