//===- provenance_test.cpp - Derivation recording and explain() -----------===//
//
// Part of JackEE-CPP (PLDI'20 "Frameworks and Caches" reproduction).
//
// The provenance subsystem's contract, exercised end to end: the recorder
// keeps exactly one canonical (rule, witnesses) derivation per derived
// tuple and none for base facts; epochs attribute base facts to their
// insertion phase; re-running an evaluator never rewrites frozen records;
// explain() materializes trees that bottom out only in base facts, respect
// depth/node caps, and surface `Rule::Origin` as the source annotation;
// the query parser accepts the `--explain` syntax and reports usable
// errors; and the session API captures enough cell state to answer
// explain() queries against a finished analysis.
//
//===----------------------------------------------------------------------===//

#include "core/Report.h"
#include "core/Session.h"
#include "datalog/Database.h"
#include "datalog/Evaluator.h"
#include "datalog/Parser.h"
#include "provenance/Explain.h"
#include "provenance/Provenance.h"
#include "synth/SynthApp.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

using namespace jackee;
using namespace jackee::datalog;
using namespace jackee::provenance;

namespace {

constexpr const char *TransitiveClosureRules =
    ".decl edge(a: symbol, b: symbol)\n"
    ".decl path(a: symbol, b: symbol)\n"
    "path(x, y) :- edge(x, y).\n"
    "path(x, z) :- path(x, y), edge(y, z).\n";

/// One self-contained evaluation with an attached recorder.
struct RecordedRun {
  SymbolTable Symbols;
  Database DB;
  RuleSet Rules;
  std::unique_ptr<Evaluator> Eval;
  ProvenanceRecorder Recorder;

  RecordedRun(const char *RuleText, const char *Origin,
              const std::function<void(Database &)> &LoadFacts,
              unsigned Threads = 1, const char *Epoch = "base")
      : DB(Symbols), Recorder(DB, Rules) {
    ParserResult PR = parseRules(DB, Rules, RuleText, Origin);
    EXPECT_TRUE(PR.Ok) << PR.Error;
    Recorder.beginEpoch(Epoch);
    LoadFacts(DB);
    Eval = std::make_unique<Evaluator>(DB, Rules, Threads);
    EXPECT_EQ(Eval->validate(), "");
    Eval->setObserver(&Recorder);
    Eval->run();
  }

  uint32_t rel(const char *Name) const { return DB.find(Name).index(); }
};

void loadChain(Database &DB, int N) {
  for (int I = 0; I + 1 < N; ++I)
    DB.insertFact("edge",
                  {"n" + std::to_string(I), "n" + std::to_string(I + 1)});
}

/// Counts the nodes of a derivation tree.
uint32_t treeSize(const DerivationNode &N) {
  uint32_t Count = 1;
  for (const DerivationNode &C : N.Children)
    Count += treeSize(C);
  return Count;
}

/// True if some node in the tree satisfies \p Pred.
bool anyNode(const DerivationNode &N,
             const std::function<bool(const DerivationNode &)> &Pred) {
  if (Pred(N))
    return true;
  for (const DerivationNode &C : N.Children)
    if (anyNode(C, Pred))
      return true;
  return false;
}

/// Checks that every leaf of a complete (untruncated) tree is a base fact.
void expectBottomsOutInBaseFacts(const DerivationNode &N) {
  EXPECT_FALSE(N.Cyclic) << N.Atom;
  EXPECT_FALSE(N.Truncated) << N.Atom;
  if (N.Children.empty()) {
    EXPECT_TRUE(N.IsBase) << "leaf is not a base fact: " << N.Atom;
  } else {
    EXPECT_FALSE(N.IsBase) << N.Atom;
    for (const DerivationNode &C : N.Children)
      expectBottomsOutInBaseFacts(C);
  }
}

uint32_t maxDepth(const DerivationNode &N) {
  uint32_t Deepest = 0;
  for (const DerivationNode &C : N.Children)
    Deepest = std::max(Deepest, maxDepth(C) + 1);
  return Deepest;
}

TEST(Recorder, BaseFactsHaveNoDerivationDerivedTuplesHaveOne) {
  RecordedRun R(TransitiveClosureRules, "test.dl",
                [](Database &DB) { loadChain(DB, 5); });

  const Relation &Edge = R.DB.relation(R.DB.find("edge"));
  const Relation &Path = R.DB.relation(R.DB.find("path"));
  for (uint32_t T = 0; T != Edge.size(); ++T)
    EXPECT_EQ(R.Recorder.derivationOf(R.rel("edge"), T), nullptr);
  for (uint32_t T = 0; T != Path.size(); ++T)
    ASSERT_NE(R.Recorder.derivationOf(R.rel("path"), T), nullptr)
        << "path tuple " << T << " has no derivation";

  EXPECT_EQ(R.Recorder.stats().TuplesRecorded, Path.size());
  EXPECT_GE(R.Recorder.stats().CandidatesSeen,
            R.Recorder.stats().TuplesRecorded);
}

TEST(Recorder, WitnessRefsAreBodyOrderAndCompose) {
  RecordedRun R(TransitiveClosureRules, "test.dl",
                [](Database &DB) { loadChain(DB, 6); });
  const Relation &Path = R.DB.relation(R.DB.find("path"));
  const Relation &Edge = R.DB.relation(R.DB.find("edge"));

  bool SawRecursive = false;
  for (uint32_t T = 0; T != Path.size(); ++T) {
    const ProvenanceRecorder::Record *Rec =
        R.Recorder.derivationOf(R.rel("path"), T);
    ASSERT_NE(Rec, nullptr);
    std::span<const uint32_t> Refs = R.Recorder.refs(*Rec);
    if (Rec->RuleIdx == 0) {
      // path(x, y) :- edge(x, y): one witness, same columns.
      ASSERT_EQ(Refs.size(), 1u);
      ASSERT_LT(Refs[0], Edge.size());
      EXPECT_EQ(Edge.tuple(Refs[0])[0], Path.tuple(T)[0]);
      EXPECT_EQ(Edge.tuple(Refs[0])[1], Path.tuple(T)[1]);
    } else {
      // path(x, z) :- path(x, y), edge(y, z): witnesses in body order.
      SawRecursive = true;
      ASSERT_EQ(Rec->RuleIdx, 1u);
      ASSERT_EQ(Refs.size(), 2u);
      ASSERT_LT(Refs[0], Path.size());
      ASSERT_LT(Refs[1], Edge.size());
      EXPECT_LT(Refs[0], T) << "witness must predate the derived tuple";
      EXPECT_EQ(Path.tuple(Refs[0])[0], Path.tuple(T)[0]); // x
      EXPECT_EQ(Path.tuple(Refs[0])[1], Edge.tuple(Refs[1])[0]); // y
      EXPECT_EQ(Edge.tuple(Refs[1])[1], Path.tuple(T)[1]); // z
    }
  }
  EXPECT_TRUE(SawRecursive);
}

TEST(Recorder, CanonicalDerivationIsLeastRuleThenLeastRefs) {
  // Both rules derive out("v") in the same round; the canonical record must
  // be the lexicographically least candidate — rule 0 — at any thread
  // count, regardless of evaluation order.
  const char *Rules = ".decl a(x: symbol)\n"
                      ".decl b(x: symbol)\n"
                      ".decl out(x: symbol)\n"
                      "out(x) :- a(x).\n"
                      "out(x) :- b(x).\n";
  for (unsigned Threads : {1u, 2u, 8u}) {
    RecordedRun R(Rules, "test.dl",
                  [](Database &DB) {
                    DB.insertFact("a", {"v"});
                    DB.insertFact("b", {"v"});
                  },
                  Threads);
    const Relation &Out = R.DB.relation(R.DB.find("out"));
    ASSERT_EQ(Out.size(), 1u);
    const ProvenanceRecorder::Record *Rec =
        R.Recorder.derivationOf(R.rel("out"), 0);
    ASSERT_NE(Rec, nullptr);
    EXPECT_EQ(Rec->RuleIdx, 0u) << "thread count " << Threads;
    EXPECT_EQ(R.Recorder.stats().CandidatesSeen, 2u);
    EXPECT_EQ(R.Recorder.stats().TuplesRecorded, 1u);
  }
}

TEST(Recorder, EpochWatermarksAttributeBaseFacts) {
  SymbolTable Symbols;
  Database DB(Symbols);
  RuleSet Rules;
  ASSERT_TRUE(parseRules(DB, Rules, TransitiveClosureRules, "test.dl").Ok);
  ProvenanceRecorder Recorder(DB, Rules);

  DB.insertFact("edge", {"pre0", "pre1"}); // before any epoch
  Recorder.beginEpoch("extraction");
  DB.insertFact("edge", {"a", "b"});
  DB.insertFact("edge", {"b", "c"});
  Recorder.beginEpoch("bean-wiring round 1");
  DB.insertFact("edge", {"c", "d"});

  uint32_t EdgeRel = DB.find("edge").index();
  EXPECT_EQ(Recorder.epochOf(EdgeRel, 0), "unknown");
  EXPECT_EQ(Recorder.epochOf(EdgeRel, 1), "extraction");
  EXPECT_EQ(Recorder.epochOf(EdgeRel, 2), "extraction");
  EXPECT_EQ(Recorder.epochOf(EdgeRel, 3), "bean-wiring round 1");
  EXPECT_EQ(Recorder.epochCount(), 2u);
}

TEST(Recorder, RerunFreezesExistingRecords) {
  RecordedRun R(TransitiveClosureRules, "test.dl",
                [](Database &DB) { loadChain(DB, 4); });
  uint32_t PathRel = R.rel("path");
  uint32_t FirstRunPaths = R.DB.relation(R.DB.find("path")).size();
  ASSERT_EQ(R.Recorder.stats().TuplesRecorded, FirstRunPaths);

  // Snapshot every record of the first run.
  std::vector<std::pair<uint32_t, std::vector<uint32_t>>> Before;
  for (uint32_t T = 0; T != FirstRunPaths; ++T) {
    const ProvenanceRecorder::Record *Rec = R.Recorder.derivationOf(PathRel, T);
    std::span<const uint32_t> Refs = R.Recorder.refs(*Rec);
    Before.emplace_back(Rec->RuleIdx,
                        std::vector<uint32_t>(Refs.begin(), Refs.end()));
  }

  // The bean-wiring pattern: facts arrive between runs, evaluator re-runs.
  R.Recorder.beginEpoch("round 2");
  R.DB.insertFact("edge", {"n3", "n4"});
  R.Eval->run();

  uint32_t SecondRunPaths = R.DB.relation(R.DB.find("path")).size();
  EXPECT_GT(SecondRunPaths, FirstRunPaths);
  // Old records are frozen bit for bit; new tuples got records.
  for (uint32_t T = 0; T != FirstRunPaths; ++T) {
    const ProvenanceRecorder::Record *Rec = R.Recorder.derivationOf(PathRel, T);
    ASSERT_NE(Rec, nullptr);
    EXPECT_EQ(Rec->RuleIdx, Before[T].first);
    std::span<const uint32_t> Refs = R.Recorder.refs(*Rec);
    EXPECT_EQ(std::vector<uint32_t>(Refs.begin(), Refs.end()),
              Before[T].second);
  }
  for (uint32_t T = FirstRunPaths; T != SecondRunPaths; ++T)
    EXPECT_NE(R.Recorder.derivationOf(PathRel, T), nullptr);
  EXPECT_EQ(R.Recorder.stats().TuplesRecorded, SecondRunPaths);
}

TEST(Explain, TreeBottomsOutInBaseFactsWithOrigins) {
  RecordedRun R(TransitiveClosureRules, "myframework.dl",
                [](Database &DB) { loadChain(DB, 4); },
                /*Threads=*/1, /*Epoch=*/"extraction");
  Explainer Ex(R.DB, R.Rules, R.Recorder);

  std::string Error;
  std::vector<DerivationNode> Trees =
      Ex.explainQuery("path(\"n0\", \"n3\")", Error);
  EXPECT_EQ(Error, "");
  ASSERT_EQ(Trees.size(), 1u);
  const DerivationNode &Root = Trees[0];
  EXPECT_EQ(Root.Atom, "path(\"n0\", \"n3\")");
  EXPECT_FALSE(Root.IsBase);
  expectBottomsOutInBaseFacts(Root);

  // Satellite 1: Rule::Origin (file:line from the parser) is the source of
  // every derived node; base facts carry their epoch label instead.
  std::function<void(const DerivationNode &)> CheckSources =
      [&](const DerivationNode &N) {
        if (N.IsBase)
          EXPECT_EQ(N.Source, "extraction") << N.Atom;
        else
          EXPECT_EQ(N.Source.rfind("myframework.dl:", 0), 0u)
              << N.Atom << " source: " << N.Source;
        for (const DerivationNode &C : N.Children)
          CheckSources(C);
      };
  CheckSources(Root);
}

TEST(Explain, DepthCapSetsTruncated) {
  RecordedRun R(TransitiveClosureRules, "test.dl",
                [](Database &DB) { loadChain(DB, 40); });
  ExplainOptions Opts;
  Opts.MaxDepth = 3;
  Explainer Ex(R.DB, R.Rules, R.Recorder, Opts);

  const Relation &Path = R.DB.relation(R.DB.find("path"));
  // The last tuple of the longest chain needs far more than 3 levels.
  DerivationNode Tree = Ex.explain(R.DB.find("path"), Path.size() - 1);
  EXPECT_LE(maxDepth(Tree), 3u);
  EXPECT_TRUE(anyNode(Tree, [](const DerivationNode &N) {
    return N.Truncated;
  }));
}

TEST(Explain, NodeBudgetCapsTreeSize) {
  RecordedRun R(TransitiveClosureRules, "test.dl",
                [](Database &DB) { loadChain(DB, 40); });
  ExplainOptions Opts;
  Opts.MaxNodes = 5;
  Explainer Ex(R.DB, R.Rules, R.Recorder, Opts);

  const Relation &Path = R.DB.relation(R.DB.find("path"));
  DerivationNode Tree = Ex.explain(R.DB.find("path"), Path.size() - 1);
  // The budget counts expanded children; the root rides for free.
  EXPECT_LE(treeSize(Tree), Opts.MaxNodes + 1);
  EXPECT_TRUE(anyNode(Tree, [](const DerivationNode &N) {
    return N.Truncated;
  }));
}

TEST(Explain, QueryWildcardsAndConstantsFilter) {
  RecordedRun R(TransitiveClosureRules, "test.dl",
                [](Database &DB) { loadChain(DB, 4); });
  Explainer Ex(R.DB, R.Rules, R.Recorder);
  std::string Error;

  // Bare relation name and all-wildcard args both match every tuple.
  uint32_t PathCount = R.DB.relation(R.DB.find("path")).size();
  EXPECT_EQ(Ex.explainQuery("path", Error).size(), PathCount);
  EXPECT_EQ(Error, "");
  EXPECT_EQ(Ex.explainQuery("path(_, _)", Error).size(), PathCount);
  EXPECT_EQ(Error, "");

  // A bound first column keeps only n0's successors: n1, n2, n3.
  EXPECT_EQ(Ex.explainQuery("path(\"n0\", _)", Error).size(), 3u);
  EXPECT_EQ(Error, "");

  // A constant never interned matches nothing — and is not an error.
  EXPECT_TRUE(Ex.explainQuery("path(\"ghost\", _)", Error).empty());
  EXPECT_EQ(Error, "");
}

TEST(Explain, QueryErrorsAreDiagnosed) {
  RecordedRun R(TransitiveClosureRules, "test.dl",
                [](Database &DB) { loadChain(DB, 3); });
  Explainer Ex(R.DB, R.Rules, R.Recorder);
  std::string Error;

  EXPECT_TRUE(Ex.explainQuery("", Error).empty());
  EXPECT_NE(Error.find("expected a relation name"), std::string::npos);

  EXPECT_TRUE(Ex.explainQuery("NoSuchRel(_)", Error).empty());
  EXPECT_NE(Error.find("unknown relation"), std::string::npos);

  EXPECT_TRUE(Ex.explainQuery("path(\"n0\")", Error).empty());
  EXPECT_FALSE(Error.empty()) << "arity mismatch must be diagnosed";

  EXPECT_TRUE(Ex.explainQuery("path \"n0\"", Error).empty());
  EXPECT_FALSE(Error.empty());
}

TEST(Explain, RenderersProduceAnnotatedOutput) {
  RecordedRun R(TransitiveClosureRules, "test.dl",
                [](Database &DB) { loadChain(DB, 3); });
  Explainer Ex(R.DB, R.Rules, R.Recorder);
  std::string Error;
  std::vector<DerivationNode> Trees =
      Ex.explainQuery("path(\"n0\", \"n2\")", Error);
  ASSERT_EQ(Trees.size(), 1u);

  std::string Text = Explainer::renderText(Trees[0]);
  EXPECT_NE(Text.find("path(\"n0\", \"n2\")"), std::string::npos);
  EXPECT_NE(Text.find("[rule: test.dl:"), std::string::npos);
  EXPECT_NE(Text.find("[base fact: epoch \"base\"]"), std::string::npos);
  EXPECT_NE(Text.find("\n  "), std::string::npos) << "children are indented";

  std::string Json = Explainer::renderJson(Trees[0]);
  EXPECT_NE(Json.find("\"kind\": \"rule\""), std::string::npos);
  EXPECT_NE(Json.find("\"kind\": \"base\""), std::string::npos);
  EXPECT_NE(Json.find("\"children\": ["), std::string::npos);
  EXPECT_NE(Json.find("\\\"n0\\\""), std::string::npos)
      << "atom quotes must be JSON-escaped";
}

TEST(GlueTrail, EventsKeepOrderRoundsAndKindNames) {
  SymbolTable Symbols;
  Database DB(Symbols);
  RuleSet Rules;
  ProvenanceRecorder Recorder(DB, Rules);
  using Kind = ProvenanceRecorder::GlueEvent::Kind;

  Recorder.recordGlue(Kind::BeanObjectCreated, "shop.Repo", "bean definition",
                      1);
  Recorder.recordGlue(Kind::FieldInjection, "F#3", "bean into field", 1);
  Recorder.recordGlue(Kind::EntryPointExercised, "M#7", "Servlet.doPost", 2);

  ASSERT_EQ(Recorder.glueEvents().size(), 3u);
  EXPECT_EQ(Recorder.glueEvents()[0].Subject, "shop.Repo");
  EXPECT_EQ(Recorder.glueEvents()[1].Round, 1u);
  EXPECT_EQ(Recorder.glueEvents()[2].EventKind, Kind::EntryPointExercised);

  EXPECT_STREQ(ProvenanceRecorder::glueKindName(Kind::EntryPointExercised),
               "entry-point-exercised");
  EXPECT_STREQ(ProvenanceRecorder::glueKindName(Kind::MockObjectCreated),
               "mock-object-created");
  EXPECT_STREQ(ProvenanceRecorder::glueKindName(Kind::BeanObjectCreated),
               "bean-object-created");
  EXPECT_STREQ(ProvenanceRecorder::glueKindName(Kind::FieldInjection),
               "field-injection");
  EXPECT_STREQ(ProvenanceRecorder::glueKindName(Kind::MethodInjection),
               "method-injection");
  EXPECT_STREQ(ProvenanceRecorder::glueKindName(Kind::GetBeanResolved),
               "get-bean-resolved");
}

TEST(RuleListing, ReportShowsIndexOriginAndNegation) {
  SymbolTable Symbols;
  Database DB(Symbols);
  RuleSet Rules;
  const char *Text = ".decl Bean(c: symbol)\n"
                     ".decl Wired(a: symbol, b: symbol)\n"
                     ".decl Unwired(c: symbol)\n"
                     "Unwired(c) :- Bean(c), !Wired(c, c).\n";
  ASSERT_TRUE(parseRules(DB, Rules, Text, "wiring.dl").Ok);

  std::string Report = core::ruleSetReport(DB, Rules);
  EXPECT_NE(Report.find("#0"), std::string::npos);
  EXPECT_NE(Report.find("wiring.dl:4"), std::string::npos)
      << "Rule::Origin must appear in the listing:\n" << Report;
  EXPECT_NE(Report.find("Unwired(V0) :- Bean(V0), !Wired(V0, V0)."),
            std::string::npos)
      << Report;
}

TEST(SessionCapture, ExplainsEntryPointsOfFinishedAnalysis) {
  core::AnalysisSession Session;
  core::CellResult Cell =
      Session.open(synth::petstoreApp(), core::AnalysisKind::Mod2ObjH);
  ASSERT_TRUE(Cell.ok()) << Cell.error().Message;
  const core::Metrics &Result = Cell->metrics();

  EXPECT_TRUE(Result.ProvenanceEnabled);
  EXPECT_GT(Result.ProvenanceTuplesRecorded, 0u);
  EXPECT_GT(Result.ProvenanceGlueEvents, 0u);
  EXPECT_EQ(Result.ProvenanceTuplesRecorded,
            Cell->recorder().stats().TuplesRecorded);

  // The ISSUE acceptance query: an ExercisedEntryPoint tuple of the pet
  // store explains down to base facts only.
  std::string Error;
  std::vector<DerivationNode> Trees =
      Cell->explain("ExercisedEntryPoint", Error);
  EXPECT_EQ(Error, "");
  ASSERT_FALSE(Trees.empty());
  for (const DerivationNode &Tree : Trees)
    expectBottomsOutInBaseFacts(Tree);

  // The cell's explain path must match a hand-built Explainer over the
  // cell's own state byte for byte (the old capture-overload workflow).
  Explainer Ex(Cell->database(), Cell->rules(), Cell->recorder());
  std::string ManualError;
  std::vector<DerivationNode> Manual =
      Ex.explainQuery("ExercisedEntryPoint", ManualError);
  ASSERT_EQ(Manual.size(), Trees.size());
  for (size_t I = 0; I != Trees.size(); ++I)
    EXPECT_EQ(Explainer::renderText(Manual[I]),
              Explainer::renderText(Trees[I]));

  // The servlet's doPost is among the exercised entry points, and the glue
  // trail saw it get exercised.
  bool SawDoPost = false;
  for (const ProvenanceRecorder::GlueEvent &E : Cell->recorder().glueEvents())
    if (E.EventKind ==
            ProvenanceRecorder::GlueEvent::Kind::EntryPointExercised &&
        E.Detail.find("doPost") != std::string::npos)
      SawDoPost = true;
  EXPECT_TRUE(SawDoPost);
}

TEST(SessionCapture, RecordingStaysOffByDefault) {
  ASSERT_EQ(unsetenv("JACKEE_PROVENANCE"), 0);
  core::AnalysisSession Session;
  core::AnalysisResult Result =
      Session.run(synth::petstoreApp(), core::AnalysisKind::CI);
  ASSERT_TRUE(Result.ok()) << Result.error().Message;
  EXPECT_FALSE(Result->ProvenanceEnabled);
  EXPECT_EQ(Result->ProvenanceTuplesRecorded, 0u);
  EXPECT_EQ(Result->ProvenanceCandidatesSeen, 0u);
  EXPECT_EQ(Result->ProvenanceGlueEvents, 0u);
}

TEST(SessionCapture, EnvVarEnablesRecordingWithoutCapture) {
  ASSERT_EQ(setenv("JACKEE_PROVENANCE", "1", /*overwrite=*/1), 0);
  core::AnalysisSession Session;
  core::AnalysisResult Result =
      Session.run(synth::petstoreApp(), core::AnalysisKind::CI);
  ASSERT_EQ(unsetenv("JACKEE_PROVENANCE"), 0);
  ASSERT_TRUE(Result.ok()) << Result.error().Message;
  EXPECT_TRUE(Result->ProvenanceEnabled);
  EXPECT_GT(Result->ProvenanceTuplesRecorded, 0u);
}

} // namespace
