//===- facts_test.cpp - Fact extraction tests ------------------------------===//
//
// Part of JackEE-CPP (PLDI'20 "Frameworks and Caches" reproduction).
//
// The extractor produces the paper's Figure 1/2 base relations; these tests
// pin the schema, the entity encoding round-trip, and the shape of the
// extracted tuples for a small program and an XML config.
//
//===----------------------------------------------------------------------===//

#include "facts/Extractor.h"

#include <gtest/gtest.h>

using namespace jackee;
using namespace jackee::facts;
using namespace jackee::ir;

namespace {

class FactsTest : public ::testing::Test {
protected:
  FactsTest() : DB(Symbols), P(Symbols), Ex(DB) {
    Object = P.addClass("java.lang.Object", TypeKind::Class,
                        TypeId::invalid());
    P.addClass("java.lang.String", TypeKind::Class, Object);
  }

  SymbolTable Symbols;
  datalog::Database DB;
  Program P;
  Extractor Ex;
  TypeId Object;
};

TEST_F(FactsTest, SchemaDeclared) {
  for (const char *Rel :
       {"ClassType", "InterfaceType", "ApplicationClass",
        "ConcreteApplicationClass", "SubtypeOf", "Class_Annotation",
        "Method_Annotation", "Field_Annotation", "Method_DeclaringType",
        "Method_SimpleName", "ConcreteMethod", "StaticMethod",
        "Field_DeclaringType", "Field_Name", "Field_Type", "Var_Type",
        "FormalParam", "ActualParam", "AssignReturnValue",
        "VirtualInvocation_SimpleName", "VirtualInvocation_Base",
        "Invocation_InMethod", "CastInMethod", "Class_DefaultBeanId",
        "XMLNode", "XMLNodeAttr", "XMLNodeText"})
    EXPECT_TRUE(DB.find(Rel).isValid()) << Rel;
}

TEST_F(FactsTest, EntityEncodingRoundTrip) {
  EXPECT_EQ(Extractor::decodeMethod(Extractor::encodeMethod(MethodId(7))),
            MethodId(7));
  EXPECT_EQ(Extractor::decodeField(Extractor::encodeField(FieldId(3))),
            FieldId(3));
  EXPECT_EQ(Extractor::decodeVar(Extractor::encodeVar(VarId(12))),
            VarId(12));
  EXPECT_EQ(Extractor::decodeInvoke(Extractor::encodeInvoke(InvokeId(0))),
            InvokeId(0));
  // Malformed inputs decode to invalid, never crash.
  EXPECT_FALSE(Extractor::decodeMethod("F#3").isValid());
  EXPECT_FALSE(Extractor::decodeMethod("M#").isValid());
  EXPECT_FALSE(Extractor::decodeMethod("M#12x").isValid());
  EXPECT_FALSE(Extractor::decodeMethod("").isValid());
  EXPECT_FALSE(Extractor::decodeMethod("com.app.Foo").isValid());
}

TEST_F(FactsTest, DefaultBeanIdConvention) {
  EXPECT_EQ(defaultBeanId("com.app.UserService"), "userService");
  EXPECT_EQ(defaultBeanId("Simple"), "simple");
  EXPECT_EQ(defaultBeanId("a.b.x"), "x");
  EXPECT_EQ(defaultBeanId("a.b.URL"), "uRL"); // Spring's literal rule
}

TEST_F(FactsTest, ProgramExtraction) {
  TypeId Iface = P.addClass("app.I", TypeKind::Interface, Object, {}, true,
                            true);
  TypeId App = P.addClass("app.Controller", TypeKind::Class, Object, {Iface},
                          false, /*IsApplication=*/true);
  P.annotateType(App, "org.spring.@Controller");
  FieldId F = P.addField(App, "dep", Object);
  P.annotateField(F, "@Autowired");
  MethodBuilder M = P.addMethod(App, "handle", {Object}, Object);
  P.annotateMethod(M.id(), "@RequestMapping");
  VarId Cast = M.local("c", App);
  M.cast(Cast, App, M.param(0))
      .virtualCall(VarId::invalid(), Cast, "handle", {Object}, {M.param(0)})
      .ret(M.param(0));
  P.finalize();
  Ex.extractProgram(P);

  EXPECT_TRUE(DB.containsFact("ConcreteApplicationClass",
                              {"app.Controller"}));
  EXPECT_FALSE(DB.containsFact("ConcreteApplicationClass", {"app.I"}));
  EXPECT_TRUE(DB.containsFact("InterfaceType", {"app.I"}));
  EXPECT_TRUE(DB.containsFact("SubtypeOf", {"app.Controller", "app.I"}));
  EXPECT_TRUE(
      DB.containsFact("SubtypeOf", {"app.Controller", "java.lang.Object"}));
  EXPECT_TRUE(DB.containsFact("Class_Annotation",
                              {"app.Controller", "org.spring.@Controller"}));
  EXPECT_TRUE(DB.containsFact("Class_DefaultBeanId",
                              {"app.Controller", "controller"}));

  std::string MSym = Extractor::encodeMethod(M.id());
  EXPECT_TRUE(DB.containsFact("Method_DeclaringType",
                              {MSym, "app.Controller"}));
  EXPECT_TRUE(DB.containsFact("Method_SimpleName", {MSym, "handle"}));
  EXPECT_TRUE(DB.containsFact("ConcreteMethod", {MSym}));
  EXPECT_TRUE(DB.containsFact("Method_Annotation",
                              {MSym, "@RequestMapping"}));
  EXPECT_TRUE(DB.containsFact("CastInMethod", {MSym, "app.Controller"}));

  std::string FSym = Extractor::encodeField(F);
  EXPECT_TRUE(DB.containsFact("Field_DeclaringType",
                              {FSym, "app.Controller"}));
  EXPECT_TRUE(DB.containsFact("Field_Name", {FSym, "dep"}));
  EXPECT_TRUE(DB.containsFact("Field_Annotation", {FSym, "@Autowired"}));

  // Formal parameter facts with index and declared type.
  std::string PSym = Extractor::encodeVar(P.method(M.id()).Params[0]);
  EXPECT_TRUE(DB.containsFact("FormalParam", {"0", MSym, PSym}));
  EXPECT_TRUE(DB.containsFact("Var_Type", {PSym, "java.lang.Object"}));

  // The virtual invocation's shape.
  const Statement &Call = P.method(M.id()).Statements[1];
  std::string ISym = Extractor::encodeInvoke(Call.Invoke);
  EXPECT_TRUE(DB.containsFact("Invocation_InMethod", {ISym, MSym}));
  EXPECT_TRUE(
      DB.containsFact("VirtualInvocation_SimpleName", {ISym, "handle"}));
  EXPECT_TRUE(DB.containsFact("ActualParam", {"0", ISym, PSym}));
}

TEST_F(FactsTest, XmlExtraction) {
  xml::ParseResult R = xml::Parser::parse(
      "<beans><bean id=\"svc\" class=\"app.Svc\">"
      "<property name=\"repo\" ref=\"r\"/></bean>"
      "<note>hello</note></beans>");
  ASSERT_TRUE(R.ok());
  Ex.extractXml(*R.Doc, "beans.xml");

  EXPECT_TRUE(DB.containsFact("XMLNode", {"beans.xml", "0", "-1", "", "beans"}));
  EXPECT_TRUE(DB.containsFact("XMLNode", {"beans.xml", "1", "0", "", "bean"}));
  EXPECT_TRUE(
      DB.containsFact("XMLNodeAttr", {"beans.xml", "1", "0", "id", "svc"}));
  EXPECT_TRUE(DB.containsFact("XMLNodeAttr",
                              {"beans.xml", "1", "1", "class", "app.Svc"}));
  EXPECT_TRUE(DB.containsFact("XMLNode", {"beans.xml", "2", "1", "", "property"}));
  EXPECT_TRUE(DB.containsFact("XMLNodeText", {"beans.xml", "3", "hello"}));
}

TEST_F(FactsTest, NamespacedXmlSplitsPrefix) {
  xml::ParseResult R = xml::Parser::parse(
      "<beans><security:authentication-manager/></beans>");
  ASSERT_TRUE(R.ok());
  Ex.extractXml(*R.Doc, "sec.xml");
  EXPECT_TRUE(DB.containsFact(
      "XMLNode", {"sec.xml", "1", "0", "security", "authentication-manager"}));
}

TEST_F(FactsTest, StaticMethodsMarked) {
  TypeId App =
      P.addClass("app.Util", TypeKind::Class, Object, {}, false, true);
  MethodBuilder M =
      P.addMethod(App, "helper", {}, TypeId::invalid(), /*IsStatic=*/true);
  P.finalize();
  Ex.extractProgram(P);
  EXPECT_TRUE(
      DB.containsFact("StaticMethod", {Extractor::encodeMethod(M.id())}));
}

} // namespace
