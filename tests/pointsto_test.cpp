//===- pointsto_test.cpp - Points-to solver semantics tests ---------------===//
//
// Part of JackEE-CPP (PLDI'20 "Frameworks and Caches" reproduction).
//
//===----------------------------------------------------------------------===//

#include "pointsto/Solver.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

using namespace jackee;
using namespace jackee::ir;
using namespace jackee::pointsto;

namespace {

/// Fixture with a fresh program containing Object/String/Throwable roots.
class SolverTest : public ::testing::Test {
protected:
  SolverTest() : P(Symbols) {
    Object = P.addClass("java.lang.Object", TypeKind::Class,
                        TypeId::invalid());
    StringTy = P.addClass("java.lang.String", TypeKind::Class, Object);
    Throwable = P.addClass("java.lang.Throwable", TypeKind::Class, Object);
    Exception = P.addClass("java.lang.Exception", TypeKind::Class, Throwable);
    Runtime =
        P.addClass("java.lang.RuntimeException", TypeKind::Class, Exception);
  }

  /// Runs an analysis with `main` as the sole entry point.
  std::unique_ptr<Solver> analyze(MethodId Main, uint32_t K, uint32_t H) {
    P.finalize();
    auto S = std::make_unique<Solver>(P, SolverConfig{K, H});
    S->makeReachable(Main, S->contexts().empty());
    S->solve();
    return S;
  }

  /// Context-insensitively projected points-to of \p V as a set of alloc
  /// site labels.
  static std::vector<std::string> sitesOf(const Solver &S, VarId V) {
    std::vector<std::string> Labels;
    for (AllocSiteId Site : S.varPointsToSites(V))
      Labels.push_back(
          S.program().symbols().text(S.program().allocSite(Site).Label));
    std::sort(Labels.begin(), Labels.end());
    return Labels;
  }

  static size_t siteCount(const Solver &S, VarId V) {
    return S.varPointsToSites(V).size();
  }

  SymbolTable Symbols;
  Program P;
  TypeId Object, StringTy, Throwable, Exception, Runtime;
};

TEST_F(SolverTest, AllocAndMove) {
  TypeId A = P.addClass("A", TypeKind::Class, Object);
  MethodBuilder Main =
      P.addMethod(A, "main", {}, TypeId::invalid(), /*IsStatic=*/true);
  VarId X = Main.local("x", Object);
  VarId Y = Main.local("y", Object);
  Main.alloc(X, A).move(Y, X);

  auto S = analyze(Main.id(), 0, 0);
  EXPECT_EQ(siteCount(*S, X), 1u);
  EXPECT_EQ(siteCount(*S, Y), 1u);
  EXPECT_EQ(S->varPointsToSites(X), S->varPointsToSites(Y));
}

TEST_F(SolverTest, FieldStoreLoadIsObjectSensitive) {
  // Two distinct A objects, each storing a different payload; loads must not
  // conflate (field sensitivity on abstract objects).
  TypeId A = P.addClass("A", TypeKind::Class, Object);
  TypeId Pay = P.addClass("Pay", TypeKind::Class, Object);
  FieldId F = P.addField(A, "f", Object);

  MethodBuilder Main =
      P.addMethod(A, "main", {}, TypeId::invalid(), /*IsStatic=*/true);
  VarId A1 = Main.local("a1", A), A2 = Main.local("a2", A);
  VarId P1 = Main.local("p1", Pay), P2 = Main.local("p2", Pay);
  VarId R1 = Main.local("r1", Object), R2 = Main.local("r2", Object);
  Main.alloc(A1, A)
      .alloc(A2, A)
      .alloc(P1, Pay)
      .alloc(P2, Pay)
      .store(A1, F, P1)
      .store(A2, F, P2)
      .load(R1, A1, F)
      .load(R2, A2, F);

  auto S = analyze(Main.id(), 0, 0);
  EXPECT_EQ(siteCount(*S, R1), 1u);
  EXPECT_EQ(siteCount(*S, R2), 1u);
  EXPECT_NE(S->varPointsToSites(R1), S->varPointsToSites(R2));
}

TEST_F(SolverTest, VirtualDispatchSelectsOverride) {
  TypeId Base = P.addClass("Base", TypeKind::Class, Object);
  TypeId Der = P.addClass("Der", TypeKind::Class, Base);
  TypeId RA = P.addClass("RA", TypeKind::Class, Object);
  TypeId RB = P.addClass("RB", TypeKind::Class, Object);

  MethodBuilder BaseM = P.addMethod(Base, "mk", {}, Object);
  VarId BV = BaseM.local("v", RA);
  BaseM.alloc(BV, RA).ret(BV);
  MethodBuilder DerM = P.addMethod(Der, "mk", {}, Object);
  VarId DV = DerM.local("v", RB);
  DerM.alloc(DV, RB).ret(DV);

  MethodBuilder Main =
      P.addMethod(Base, "main", {}, TypeId::invalid(), true);
  VarId O = Main.local("o", Base);
  VarId R = Main.local("r", Object);
  Main.alloc(O, Der).virtualCall(R, O, "mk", {}, {});

  auto S = analyze(Main.id(), 0, 0);
  // Receiver is dynamically Der, so only Der.mk runs: result is RB only.
  ASSERT_EQ(siteCount(*S, R), 1u);
  EXPECT_EQ(S->program().allocSite(S->varPointsToSites(R)[0]).ObjectType, RB);
  EXPECT_TRUE(S->isMethodReachable(DerM.id()));
  EXPECT_FALSE(S->isMethodReachable(BaseM.id()));
}

TEST_F(SolverTest, ArgumentAndReturnFlow) {
  TypeId A = P.addClass("A", TypeKind::Class, Object);
  // Object id(Object o) { return o; }
  MethodBuilder IdM = P.addMethod(A, "id", {Object}, Object);
  IdM.ret(IdM.param(0));

  MethodBuilder Main = P.addMethod(A, "main", {}, TypeId::invalid(), true);
  VarId Recv = Main.local("recv", A);
  VarId Arg = Main.local("arg", A);
  VarId Ret = Main.local("ret", Object);
  Main.alloc(Recv, A).alloc(Arg, A).virtualCall(Ret, Recv, "id", {Object},
                                                {Arg});

  auto S = analyze(Main.id(), 0, 0);
  ASSERT_EQ(siteCount(*S, Ret), 1u);
  EXPECT_EQ(S->varPointsToSites(Ret), S->varPointsToSites(Arg));
}

TEST_F(SolverTest, ContextInsensitiveConflatesReceivers) {
  // c1.set(p1); c2.set(p2); under ci the parameter conflates, so c1.get()
  // sees both payloads. Under 1objH the receivers split the contexts.
  TypeId C = P.addClass("C", TypeKind::Class, Object);
  TypeId Pay = P.addClass("Pay", TypeKind::Class, Object);
  FieldId F = P.addField(C, "f", Object);

  MethodBuilder SetM = P.addMethod(C, "set", {Object}, TypeId::invalid());
  SetM.store(SetM.thisVar(), F, SetM.param(0));
  MethodBuilder GetM = P.addMethod(C, "get", {}, Object);
  VarId GTmp = GetM.local("t", Object);
  GetM.load(GTmp, GetM.thisVar(), F).ret(GTmp);

  MethodBuilder Main = P.addMethod(C, "main", {}, TypeId::invalid(), true);
  VarId C1 = Main.local("c1", C), C2 = Main.local("c2", C);
  VarId P1 = Main.local("p1", Pay), P2 = Main.local("p2", Pay);
  VarId X = Main.local("x", Object), Y = Main.local("y", Object);
  Main.alloc(C1, C)
      .alloc(C2, C)
      .alloc(P1, Pay)
      .alloc(P2, Pay)
      .virtualCall(VarId::invalid(), C1, "set", {Object}, {P1})
      .virtualCall(VarId::invalid(), C2, "set", {Object}, {P2})
      .virtualCall(X, C1, "get", {}, {})
      .virtualCall(Y, C2, "get", {}, {});

  {
    auto S = analyze(Main.id(), 0, 0);
    EXPECT_EQ(siteCount(*S, X), 2u) << "ci must conflate";
    EXPECT_EQ(siteCount(*S, Y), 2u);
  }
  {
    auto S = analyze(Main.id(), 1, 1);
    EXPECT_EQ(siteCount(*S, X), 1u) << "1objH must distinguish receivers";
    EXPECT_EQ(siteCount(*S, Y), 1u);
  }
}

TEST_F(SolverTest, HeapContextDistinguishesInternalAllocations) {
  // Each Outer allocates its own Inner at one site; with a context-sensitive
  // heap (H=1) the two Inner objects are distinct abstract objects, so their
  // fields do not conflate. With H=0 they merge.
  TypeId Outer = P.addClass("Outer", TypeKind::Class, Object);
  TypeId Inner = P.addClass("Inner", TypeKind::Class, Object);
  TypeId Pay = P.addClass("Pay", TypeKind::Class, Object);
  FieldId InnerF = P.addField(Outer, "inner", Inner);
  FieldId PayF = P.addField(Inner, "pay", Object);

  MethodBuilder Init = P.addMethod(Outer, "<init>", {}, TypeId::invalid());
  VarId IV = Init.local("i", Inner);
  Init.alloc(IV, Inner).store(Init.thisVar(), InnerF, IV);

  MethodBuilder SetM = P.addMethod(Outer, "set", {Object}, TypeId::invalid());
  VarId SI = SetM.local("i", Inner);
  SetM.load(SI, SetM.thisVar(), InnerF).store(SI, PayF, SetM.param(0));

  MethodBuilder GetM = P.addMethod(Outer, "get", {}, Object);
  VarId GI = GetM.local("i", Inner);
  VarId GT = GetM.local("t", Object);
  GetM.load(GI, GetM.thisVar(), InnerF).load(GT, GI, PayF).ret(GT);

  MethodBuilder Main = P.addMethod(Outer, "main", {}, TypeId::invalid(), true);
  VarId O1 = Main.local("o1", Outer), O2 = Main.local("o2", Outer);
  VarId P1 = Main.local("p1", Pay), P2 = Main.local("p2", Pay);
  VarId X = Main.local("x", Object), Y = Main.local("y", Object);
  Main.alloc(O1, Outer)
      .specialCall(VarId::invalid(), O1, Init.id(), {})
      .alloc(O2, Outer)
      .specialCall(VarId::invalid(), O2, Init.id(), {})
      .alloc(P1, Pay)
      .alloc(P2, Pay)
      .virtualCall(VarId::invalid(), O1, "set", {Object}, {P1})
      .virtualCall(VarId::invalid(), O2, "set", {Object}, {P2})
      .virtualCall(X, O1, "get", {}, {})
      .virtualCall(Y, O2, "get", {}, {});

  {
    auto S = analyze(Main.id(), 1, 0); // context-insensitive heap
    EXPECT_EQ(siteCount(*S, X), 2u) << "H=0 merges the Inner objects";
  }
  {
    auto S = analyze(Main.id(), 1, 1);
    EXPECT_EQ(siteCount(*S, X), 1u) << "H=1 splits the Inner objects";
    EXPECT_EQ(siteCount(*S, Y), 1u);
  }
}

TEST_F(SolverTest, CastFiltersValues) {
  TypeId A = P.addClass("A", TypeKind::Class, Object);
  TypeId B = P.addClass("B", TypeKind::Class, Object);
  MethodBuilder Main = P.addMethod(A, "main", {}, TypeId::invalid(), true);
  VarId X = Main.local("x", Object);
  VarId Y = Main.local("y", A);
  Main.alloc(X, A).stringConst(X, "s").cast(Y, A, X);

  auto S = analyze(Main.id(), 0, 0);
  EXPECT_EQ(siteCount(*S, X), 2u);
  ASSERT_EQ(siteCount(*S, Y), 1u) << "only the A object passes the cast";
  EXPECT_EQ(S->program().allocSite(S->varPointsToSites(Y)[0]).ObjectType, A);

  // The cast is recorded and may fail (the String does not conform).
  ASSERT_EQ(S->castRecords().size(), 1u);
  const auto &Rec = S->castRecords()[0];
  bool MayFail = false;
  for (NodeId N : Rec.SourceNodes)
    for (uint32_t Raw : S->pointsTo(N))
      if (!S->program().isSubtype(S->valueType(ValueId(Raw)),
                                  Rec.TargetType))
        MayFail = true;
  EXPECT_TRUE(MayFail);
  (void)B;
}

TEST_F(SolverTest, ExceptionCaughtByMatchingClause) {
  TypeId A = P.addClass("A", TypeKind::Class, Object);
  // callee: throw new RuntimeException()
  MethodBuilder Callee = P.addMethod(A, "boom", {}, TypeId::invalid());
  VarId EV = Callee.local("e", Runtime);
  Callee.alloc(EV, Runtime).throwStmt(EV);

  // caller: try { this.boom() } catch (Exception c) {}
  MethodBuilder Caller = P.addMethod(A, "main", {}, TypeId::invalid(), true);
  VarId Recv = Caller.local("r", A);
  VarId CaughtVar = Caller.local("c", Exception);
  Caller.alloc(Recv, A)
      .virtualCall(VarId::invalid(), Recv, "boom", {}, {})
      .catchClause(Exception, CaughtVar);

  auto S = analyze(Caller.id(), 0, 0);
  ASSERT_EQ(siteCount(*S, CaughtVar), 1u);
  EXPECT_EQ(
      S->program().allocSite(S->varPointsToSites(CaughtVar)[0]).ObjectType,
      Runtime);
}

TEST_F(SolverTest, ExceptionEscapesNonMatchingClauseTwoLevels) {
  TypeId A = P.addClass("A", TypeKind::Class, Object);
  TypeId Other =
      P.addClass("app.OtherException", TypeKind::Class, Throwable);

  MethodBuilder Inner = P.addMethod(A, "inner", {}, TypeId::invalid());
  VarId EV = Inner.local("e", Runtime);
  Inner.alloc(EV, Runtime).throwStmt(EV);

  // mid catches only app.OtherException: the RuntimeException passes through.
  MethodBuilder Mid = P.addMethod(A, "mid", {}, TypeId::invalid());
  VarId MC = Mid.local("c", Other);
  Mid.virtualCall(VarId::invalid(), Mid.thisVar(), "inner", {}, {})
      .catchClause(Other, MC);

  MethodBuilder Main = P.addMethod(A, "main", {}, TypeId::invalid(), true);
  VarId Recv = Main.local("r", A);
  VarId Caught = Main.local("c", Throwable);
  Main.alloc(Recv, A)
      .virtualCall(VarId::invalid(), Recv, "mid", {}, {})
      .catchClause(Throwable, Caught);

  auto S = analyze(Main.id(), 0, 0);
  EXPECT_EQ(siteCount(*S, MC), 0u);
  ASSERT_EQ(siteCount(*S, Caught), 1u);
}

TEST_F(SolverTest, FirstMatchingCatchWins) {
  TypeId A = P.addClass("A", TypeKind::Class, Object);
  MethodBuilder Main = P.addMethod(A, "main", {}, TypeId::invalid(), true);
  VarId EV = Main.local("e", Runtime);
  VarId C1 = Main.local("c1", Exception);
  VarId C2 = Main.local("c2", Throwable);
  Main.alloc(EV, Runtime)
      .throwStmt(EV)
      .catchClause(Exception, C1)   // matches first
      .catchClause(Throwable, C2);  // shadowed for RuntimeException

  auto S = analyze(Main.id(), 0, 0);
  EXPECT_EQ(siteCount(*S, C1), 1u);
  EXPECT_EQ(siteCount(*S, C2), 0u);
}

TEST_F(SolverTest, ArrayStoreLoad) {
  TypeId A = P.addClass("A", TypeKind::Class, Object);
  TypeId ArrTy = P.addArrayType(Object);
  MethodBuilder Main = P.addMethod(A, "main", {}, TypeId::invalid(), true);
  VarId Arr = Main.local("arr", ArrTy);
  VarId X = Main.local("x", A);
  VarId Y = Main.local("y", Object);
  Main.alloc(Arr, ArrTy).alloc(X, A).arrayStore(Arr, X).arrayLoad(Y, Arr);

  auto S = analyze(Main.id(), 0, 0);
  ASSERT_EQ(siteCount(*S, Y), 1u);
  EXPECT_EQ(S->varPointsToSites(Y), S->varPointsToSites(X));
}

TEST_F(SolverTest, StaticFieldFlow) {
  TypeId A = P.addClass("A", TypeKind::Class, Object);
  FieldId F = P.addField(A, "instance", A, /*IsStatic=*/true);
  MethodBuilder Main = P.addMethod(A, "main", {}, TypeId::invalid(), true);
  VarId X = Main.local("x", A);
  VarId Y = Main.local("y", A);
  Main.alloc(X, A).staticStore(F, X).staticLoad(Y, F);

  auto S = analyze(Main.id(), 0, 0);
  EXPECT_EQ(S->varPointsToSites(Y), S->varPointsToSites(X));
}

TEST_F(SolverTest, StringConstantsAreDistinctValues) {
  TypeId A = P.addClass("A", TypeKind::Class, Object);
  MethodBuilder Main = P.addMethod(A, "main", {}, TypeId::invalid(), true);
  VarId X = Main.local("x", StringTy);
  VarId Y = Main.local("y", StringTy);
  Main.stringConst(X, "userService").stringConst(Y, "mailService");

  auto S = analyze(Main.id(), 0, 0);
  EXPECT_EQ(sitesOf(*S, X), (std::vector<std::string>{"userService"}));
  EXPECT_EQ(sitesOf(*S, Y), (std::vector<std::string>{"mailService"}));
}

TEST_F(SolverTest, RecursionTerminates) {
  TypeId A = P.addClass("A", TypeKind::Class, Object);
  MethodBuilder Rec = P.addMethod(A, "rec", {Object}, Object);
  VarId RT = Rec.local("t", Object);
  Rec.virtualCall(RT, Rec.thisVar(), "rec", {Object}, {Rec.param(0)})
      .ret(RT)
      .ret(Rec.param(0)); // base case (flow-insensitive: both returns)

  MethodBuilder Main = P.addMethod(A, "main", {}, TypeId::invalid(), true);
  VarId Recv = Main.local("r", A);
  VarId Arg = Main.local("a", A);
  VarId Out = Main.local("o", Object);
  Main.alloc(Recv, A).alloc(Arg, A).virtualCall(Out, Recv, "rec", {Object},
                                                {Arg});

  auto S = analyze(Main.id(), 2, 1);
  EXPECT_TRUE(S->isMethodReachable(Rec.id()));
  EXPECT_EQ(siteCount(*S, Out), 1u);
}

TEST_F(SolverTest, CallGraphEdgesRecorded) {
  TypeId Base = P.addClass("Base", TypeKind::Class, Object);
  TypeId D1 = P.addClass("D1", TypeKind::Class, Base);
  TypeId D2 = P.addClass("D2", TypeKind::Class, Base);
  P.addMethod(D1, "go", {}, TypeId::invalid());
  P.addMethod(D2, "go", {}, TypeId::invalid());

  MethodBuilder Main = P.addMethod(Base, "main", {}, TypeId::invalid(), true);
  VarId O = Main.local("o", Base);
  // o may be D1 or D2: the virtual call has two targets (a poly v-call).
  Main.alloc(O, D1).alloc(O, D2).virtualCall(VarId::invalid(), O, "go", {},
                                             {});

  auto S = analyze(Main.id(), 0, 0);
  EXPECT_EQ(S->callGraphEdges().size(), 2u);
}

TEST_F(SolverTest, SeedObjectFieldModelsInjection) {
  // Simulates bean field injection: no store statement exists, the
  // framework seeds the field directly (paper Section 3.5).
  TypeId Ctl = P.addClass("Ctl", TypeKind::Class, Object);
  TypeId Svc = P.addClass("Svc", TypeKind::Class, Object);
  FieldId Dep = P.addField(Ctl, "svc", Svc);

  MethodBuilder Handler = P.addMethod(Ctl, "handle", {}, Object);
  VarId HT = Handler.local("t", Svc);
  Handler.load(HT, Handler.thisVar(), Dep).ret(HT);

  P.finalize();
  AllocSiteId CtlSite =
      P.addSyntheticObject(Ctl, AllocKind::Generated, "<bean Ctl>");
  AllocSiteId SvcSite =
      P.addSyntheticObject(Svc, AllocKind::Generated, "<bean Svc>");

  Solver S(P, SolverConfig{0, 0});
  CtxId Empty = S.contexts().empty();
  ValueId CtlVal = S.internValue(CtlSite, Empty);
  ValueId SvcVal = S.internValue(SvcSite, Empty);
  S.makeReachable(Handler.id(), Empty);
  S.seedVar(P.method(Handler.id()).This, Empty, CtlVal);
  S.seedObjectField(CtlVal, Dep, SvcVal);
  S.solve();

  EXPECT_EQ(S.varPointsToSites(HT),
            (std::vector<AllocSiteId>{SvcSite}));
}

namespace plugintest {

/// Plugin that injects a seed exactly once, at the first fixpoint.
class OneShotSeed : public Plugin {
public:
  OneShotSeed(VarId Var, ValueId V) : Var(Var), V(V) {}
  bool onFixpoint(Solver &S) override {
    if (Done)
      return false;
    Done = true;
    S.seedVarAllContexts(Var, V);
    return true;
  }

private:
  VarId Var;
  ValueId V;
  bool Done = false;
};

} // namespace plugintest

TEST_F(SolverTest, PluginRoundsReSolve) {
  TypeId A = P.addClass("A", TypeKind::Class, Object);
  TypeId Pay = P.addClass("Pay", TypeKind::Class, Object);
  FieldId F = P.addField(A, "f", Object);

  // main: x is never assigned by code; a plugin injects into it after the
  // first fixpoint, and the store must then re-propagate.
  MethodBuilder Main = P.addMethod(A, "main", {}, TypeId::invalid(), true);
  VarId Holder = Main.local("h", A);
  VarId X = Main.local("x", Object);
  VarId Out = Main.local("out", Object);
  Main.alloc(Holder, A).store(Holder, F, X).load(Out, Holder, F);

  P.finalize();
  AllocSiteId PaySite =
      P.addSyntheticObject(Pay, AllocKind::Generated, "<injected>");

  Solver S(P, SolverConfig{0, 0});
  ValueId PayVal = S.internValue(PaySite, S.contexts().empty());
  plugintest::OneShotSeed Seed(X, PayVal);
  S.addPlugin(&Seed);
  S.makeReachable(Main.id(), S.contexts().empty());
  S.solve();

  EXPECT_EQ(S.varPointsToSites(Out),
            (std::vector<AllocSiteId>{PaySite}));
  EXPECT_GE(S.stats().PluginRounds, 2u);
}

TEST_F(SolverTest, UnreachableCodeStaysUnanalyzed) {
  TypeId A = P.addClass("A", TypeKind::Class, Object);
  MethodBuilder Dead = P.addMethod(A, "dead", {}, TypeId::invalid());
  VarId DV = Dead.local("d", A);
  Dead.alloc(DV, A);

  MethodBuilder Main = P.addMethod(A, "main", {}, TypeId::invalid(), true);
  VarId X = Main.local("x", A);
  Main.alloc(X, A);

  auto S = analyze(Main.id(), 0, 0);
  EXPECT_FALSE(S->isMethodReachable(Dead.id()));
  EXPECT_EQ(siteCount(*S, DV), 0u);
}

/// The paper's central precision observation, reduced to its skeleton: a
/// "double dispatch" through an internally allocated helper drops one
/// context element. We verify the context machinery itself: K=2 keeps two
/// distinct client objects' data apart when the helper is the receiver the
/// client allocated, and conflates when dispatching through an
/// internally-allocated singleton-site helper.
TEST_F(SolverTest, InternalReceiverWeakensContext) {
  TypeId Map = P.addClass("MiniMap", TypeKind::Class, Object);
  TypeId Node = P.addClass("MiniNode", TypeKind::Class, Object);
  TypeId Pay = P.addClass("Pay", TypeKind::Class, Object);
  FieldId NodeF = P.addField(Map, "node", Node);
  FieldId ValF = P.addField(Node, "val", Object);

  // MiniMap() { this.node = new MiniNode(); }
  MethodBuilder Init = P.addMethod(Map, "<init>", {}, TypeId::invalid());
  VarId NV = Init.local("n", Node);
  Init.alloc(NV, Node).store(Init.thisVar(), NodeF, NV);

  // MiniNode.putVal(Object v) { this.val = v; }  -- the "double dispatch"
  MethodBuilder PutVal = P.addMethod(Node, "putVal", {Object},
                                     TypeId::invalid());
  PutVal.store(PutVal.thisVar(), ValF, PutVal.param(0));

  // MiniMap.put(Object v) { this.node.putVal(v); }
  MethodBuilder Put = P.addMethod(Map, "put", {Object}, TypeId::invalid());
  VarId PN = Put.local("n", Node);
  Put.load(PN, Put.thisVar(), NodeF)
      .virtualCall(VarId::invalid(), PN, "putVal", {Object}, {Put.param(0)});

  // MiniMap.get() { return this.node.val; }
  MethodBuilder Get = P.addMethod(Map, "get", {}, Object);
  VarId GN = Get.local("n", Node);
  VarId GV = Get.local("v", Object);
  Get.load(GN, Get.thisVar(), NodeF).load(GV, GN, ValF).ret(GV);

  MethodBuilder Main = P.addMethod(Map, "main", {}, TypeId::invalid(), true);
  VarId M1 = Main.local("m1", Map), M2 = Main.local("m2", Map);
  VarId P1 = Main.local("p1", Pay), P2 = Main.local("p2", Pay);
  VarId X = Main.local("x", Object), Y = Main.local("y", Object);
  Main.alloc(M1, Map)
      .specialCall(VarId::invalid(), M1, Init.id(), {})
      .alloc(M2, Map)
      .specialCall(VarId::invalid(), M2, Init.id(), {})
      .alloc(P1, Pay)
      .alloc(P2, Pay)
      .virtualCall(VarId::invalid(), M1, "put", {Object}, {P1})
      .virtualCall(VarId::invalid(), M2, "put", {Object}, {P2})
      .virtualCall(X, M1, "get", {}, {})
      .virtualCall(Y, M2, "get", {}, {});

  // With H=1 the internal MiniNode is split per map, and 2objH keeps the
  // two maps' payloads apart end to end.
  auto S = analyze(Main.id(), 2, 1);
  EXPECT_EQ(siteCount(*S, X), 1u);
  EXPECT_EQ(siteCount(*S, Y), 1u);

  // With a context-insensitive heap the internal receiver is a single
  // abstract object: putVal's context is the same for both maps and the
  // payloads conflate — the degradation mechanism behind the paper's
  // TreeNode finding.
  auto S0 = analyze(Main.id(), 2, 0);
  EXPECT_EQ(siteCount(*S0, X), 2u);
  EXPECT_EQ(siteCount(*S0, Y), 2u);
}

/// Property sweep: deeper contexts are never less precise on this family of
/// programs (N independent container objects exchanging payloads).
class ContextDepthSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ContextDepthSweep, PrecisionOrder) {
  auto [NumBoxes, K] = GetParam();
  SymbolTable Symbols;
  Program P(Symbols);
  TypeId Object =
      P.addClass("java.lang.Object", TypeKind::Class, TypeId::invalid());
  P.addClass("java.lang.String", TypeKind::Class, Object);
  TypeId Box = P.addClass("Box", TypeKind::Class, Object);
  TypeId Pay = P.addClass("Pay", TypeKind::Class, Object);
  FieldId F = P.addField(Box, "f", Object);

  MethodBuilder SetM = P.addMethod(Box, "set", {Object}, TypeId::invalid());
  SetM.store(SetM.thisVar(), F, SetM.param(0));
  MethodBuilder GetM = P.addMethod(Box, "get", {}, Object);
  VarId GT = GetM.local("t", Object);
  GetM.load(GT, GetM.thisVar(), F).ret(GT);

  MethodBuilder Main = P.addMethod(Box, "main", {}, TypeId::invalid(), true);
  std::vector<VarId> Outs;
  for (int I = 0; I != NumBoxes; ++I) {
    VarId B = Main.local("b" + std::to_string(I), Box);
    VarId Pv = Main.local("p" + std::to_string(I), Pay);
    VarId O = Main.local("o" + std::to_string(I), Object);
    Main.alloc(B, Box)
        .alloc(Pv, Pay)
        .virtualCall(VarId::invalid(), B, "set", {Object}, {Pv})
        .virtualCall(O, B, "get", {}, {});
    Outs.push_back(O);
  }
  P.finalize();

  Solver S(P, SolverConfig{static_cast<uint32_t>(K),
                           static_cast<uint32_t>(K > 0 ? 1 : 0)});
  S.makeReachable(Main.id(), S.contexts().empty());
  S.solve();

  for (VarId O : Outs) {
    size_t Count = S.varPointsToSites(O).size();
    if (K == 0)
      EXPECT_EQ(Count, static_cast<size_t>(NumBoxes));
    else
      EXPECT_EQ(Count, 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ContextDepthSweep,
    ::testing::Combine(::testing::Values(2, 3, 6),
                       ::testing::Values(0, 1, 2)));

/// The sharded drain's determinism contract at the unit level: the same
/// program solved at several worker counts yields identical points-to
/// sets, call-graph edge sequences, and (thread-invariant) stats. The
/// heavier session/provenance sweeps live in pointsto_parallel_test.cpp.
TEST(ThreadSweep, FixpointIsBitIdenticalAcrossWorkerCounts) {
  SymbolTable Symbols;
  Program P(Symbols);
  TypeId Object =
      P.addClass("java.lang.Object", TypeKind::Class, TypeId::invalid());
  P.addClass("java.lang.String", TypeKind::Class, Object);
  TypeId Box = P.addClass("Box", TypeKind::Class, Object);
  TypeId Pay = P.addClass("Pay", TypeKind::Class, Object);
  FieldId F = P.addField(Box, "f", Object);

  MethodBuilder SetM = P.addMethod(Box, "set", {Object}, TypeId::invalid());
  SetM.store(SetM.thisVar(), F, SetM.param(0));
  MethodBuilder GetM = P.addMethod(Box, "get", {}, Object);
  VarId GT = GetM.local("t", Object);
  GetM.load(GT, GetM.thisVar(), F).ret(GT);

  MethodBuilder Main = P.addMethod(Box, "main", {}, TypeId::invalid(), true);
  for (int I = 0; I != 24; ++I) {
    VarId B = Main.local("b" + std::to_string(I), Box);
    VarId Pv = Main.local("p" + std::to_string(I), Pay);
    VarId O = Main.local("o" + std::to_string(I), Object);
    Main.alloc(B, Box)
        .alloc(Pv, Pay)
        .virtualCall(VarId::invalid(), B, "set", {Object}, {Pv})
        .virtualCall(O, B, "get", {}, {});
  }
  P.finalize();

  auto solveAt = [&](unsigned Threads) {
    auto S = std::make_unique<Solver>(P, SolverConfig{2, 1, Threads});
    S->makeReachable(Main.id(), S->contexts().empty());
    S->solve();
    return S;
  };

  std::unique_ptr<Solver> Base = solveAt(1);
  EXPECT_EQ(Base->config().Threads, 1u);
  for (unsigned Threads : {2u, 5u, 8u}) {
    SCOPED_TRACE("Threads=" + std::to_string(Threads));
    std::unique_ptr<Solver> S = solveAt(Threads);
    EXPECT_EQ(S->config().Threads, Threads);
    for (uint32_t VI = 0; VI != P.variableCount(); ++VI)
      EXPECT_EQ(S->varPointsToSites(VarId(VI)),
                Base->varPointsToSites(VarId(VI)));
    EXPECT_EQ(std::vector<uint64_t>(S->callGraphEdges().begin(),
                                    S->callGraphEdges().end()),
              std::vector<uint64_t>(Base->callGraphEdges().begin(),
                                    Base->callGraphEdges().end()));
    EXPECT_EQ(S->reachableMethods(), Base->reachableMethods());
    EXPECT_EQ(S->stats().WorkItems, Base->stats().WorkItems);
    EXPECT_EQ(S->stats().EdgesAdded, Base->stats().EdgesAdded);
    EXPECT_EQ(S->stats().ReactionsRun, Base->stats().ReactionsRun);
    EXPECT_EQ(S->stats().Rounds, Base->stats().Rounds);
    EXPECT_EQ(S->varPointsToTuplesTotal(), Base->varPointsToTuplesTotal());
  }
}

} // namespace
