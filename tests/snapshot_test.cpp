//===- snapshot_test.cpp - AOT snapshot store tests ------------------------===//
//
// Part of JackEE-CPP (PLDI'20 "Frameworks and Caches" reproduction).
//
// Covers the mmap-able base-program store (src/snapshot/): serialization
// round trips byte-identically, a session cold-started from the store is
// bit-identical (digest and explain trees) to one that ran the builders at
// any thread count, and every rejection path — truncation, bad magic, stale
// format version, payload corruption — falls back to the builders cleanly
// instead of crashing or silently diverging.
//
//===----------------------------------------------------------------------===//

#include "core/Session.h"
#include "provenance/Explain.h"
#include "snapshot/Snapshot.h"
#include "synth/SynthApp.h"

#include "gtest/gtest.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

using namespace jackee;
using namespace jackee::core;
using namespace jackee::synth;

namespace {

/// Self-cleaning mkdtemp directory for store files.
class TempDir {
public:
  TempDir() {
    char Buf[] = "/tmp/jackee-snapshot-XXXXXX";
    const char *P = ::mkdtemp(Buf);
    EXPECT_NE(P, nullptr);
    Path = P ? P : "";
  }
  ~TempDir() {
    std::error_code EC;
    std::filesystem::remove_all(Path, EC);
  }
  const std::string &path() const { return Path; }

private:
  std::string Path;
};

/// Scoped environment override (same idiom as incremental_test.cpp).
class EnvGuard {
public:
  EnvGuard(const char *Name, const std::string &Value) : Name(Name) {
    if (const char *Old = std::getenv(Name))
      Saved = Old;
    ::setenv(Name, Value.c_str(), 1);
  }
  ~EnvGuard() {
    if (Saved.empty())
      ::unsetenv(Name);
    else
      ::setenv(Name, Saved.c_str(), 1);
  }

private:
  const char *Name;
  std::string Saved;
};

std::vector<uint8_t> readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  EXPECT_TRUE(In.good()) << Path;
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(In),
                              std::istreambuf_iterator<char>());
}

void writeFile(const std::string &Path, const std::vector<uint8_t> &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(reinterpret_cast<const char *>(Bytes.data()),
            static_cast<std::streamsize>(Bytes.size()));
  EXPECT_TRUE(Out.good()) << Path;
}

/// Concatenated explain trees of every exercised entry point — the
/// strongest per-cell equality witness we have besides the digest.
std::string explainAll(AnalysisCell &Cell) {
  std::string Error;
  std::vector<provenance::DerivationNode> Trees =
      Cell.explain("ExercisedEntryPoint", Error);
  EXPECT_EQ(Error, "");
  std::string Out;
  for (const provenance::DerivationNode &Tree : Trees)
    Out += provenance::Explainer::renderText(Tree);
  return Out;
}

/// The semantic (symbol-id-insensitive, non-wall-clock) metric fields two
/// equivalent runs must agree on.
void expectSameSemantics(const Metrics &A, const Metrics &B) {
  EXPECT_EQ(A.App, B.App);
  EXPECT_EQ(A.Analysis, B.Analysis);
  EXPECT_EQ(A.ReachableMethodsTotal, B.ReachableMethodsTotal);
  EXPECT_EQ(A.AppReachableMethods, B.AppReachableMethods);
  EXPECT_EQ(A.CallGraphEdges, B.CallGraphEdges);
  EXPECT_EQ(A.VptTuplesTotal, B.VptTuplesTotal);
  EXPECT_EQ(A.VptTuplesJavaUtil, B.VptTuplesJavaUtil);
  EXPECT_EQ(A.AppPolyVCalls, B.AppPolyVCalls);
  EXPECT_EQ(A.AppMayFailCasts, B.AppMayFailCasts);
  EXPECT_EQ(A.EntryPointsExercised, B.EntryPointsExercised);
  EXPECT_EQ(A.BeansCreated, B.BeansCreated);
  EXPECT_EQ(A.InjectionsApplied, B.InjectionsApplied);
}

TEST(SnapshotStoreTest, RoundTripByteIdentity) {
  snapshot::BaseProgram B =
      snapshot::buildBase(javalib::CollectionModel::OriginalJdk8);
  std::vector<uint8_t> Image =
      snapshot::serialize(B, javalib::CollectionModel::OriginalJdk8);
  ASSERT_GT(Image.size(), snapshot::HeaderBytes);

  snapshot::LoadResult Loaded =
      snapshot::deserialize(Image, javalib::CollectionModel::OriginalJdk8);
  ASSERT_TRUE(Loaded.ok()) << Loaded.Warning;
  EXPECT_EQ(Loaded.Bytes, Image.size());

  // Decode → re-encode must reproduce the image bit for bit: the format
  // has a single canonical encoding (fixed field order, no padding).
  std::vector<uint8_t> Image2 = snapshot::serialize(
      *Loaded.Data, javalib::CollectionModel::OriginalJdk8);
  EXPECT_EQ(Image, Image2);
}

TEST(SnapshotStoreTest, SaveAndLoadThroughDir) {
  TempDir Dir;
  snapshot::BaseProgram B =
      snapshot::buildBase(javalib::CollectionModel::SoundModulo);
  uint64_t Bytes = 0;
  ASSERT_EQ(snapshot::saveToDir(Dir.path(), B,
                                javalib::CollectionModel::SoundModulo,
                                &Bytes),
            "");
  const std::string Path =
      snapshot::snapshotPath(Dir.path(), javalib::CollectionModel::SoundModulo);
  EXPECT_EQ(std::filesystem::file_size(Path), Bytes);

  snapshot::LoadResult Loaded =
      snapshot::loadFromDir(Dir.path(), javalib::CollectionModel::SoundModulo);
  ASSERT_TRUE(Loaded.ok()) << Loaded.Warning;
  EXPECT_EQ(Loaded.Bytes, Bytes);
  EXPECT_EQ(Loaded.Data->Symbols->size(), B.Symbols->size());
  EXPECT_EQ(Loaded.Data->Base->methodCount(), B.Base->methodCount());
  EXPECT_FALSE(Loaded.Data->Facts.empty());
}

TEST(SnapshotStoreTest, ModelMismatchRejected) {
  snapshot::BaseProgram B =
      snapshot::buildBase(javalib::CollectionModel::OriginalJdk8);
  std::vector<uint8_t> Image =
      snapshot::serialize(B, javalib::CollectionModel::OriginalJdk8);
  snapshot::LoadResult Loaded =
      snapshot::deserialize(Image, javalib::CollectionModel::SoundModulo);
  EXPECT_FALSE(Loaded.ok());
  EXPECT_NE(Loaded.Warning.find("collection model"), std::string::npos)
      << Loaded.Warning;
}

TEST(SnapshotStoreTest, RejectionPathsFallBackCleanly) {
  TempDir Dir;
  snapshot::BaseProgram B =
      snapshot::buildBase(javalib::CollectionModel::SoundModulo);
  ASSERT_EQ(snapshot::saveToDir(Dir.path(), B,
                                javalib::CollectionModel::SoundModulo),
            "");
  const std::string Path =
      snapshot::snapshotPath(Dir.path(), javalib::CollectionModel::SoundModulo);
  const std::vector<uint8_t> Pristine = readFile(Path);
  ASSERT_GT(Pristine.size(), snapshot::HeaderBytes);

  // Reference result: builders only, no store anywhere.
  std::string BuilderDigest;
  {
    AnalysisSession Session{SessionOptions{}};
    CellResult Cell = Session.open(petstoreApp(), AnalysisKind::Mod2ObjH);
    ASSERT_TRUE(bool(Cell)) << Cell.error().Message;
    BuilderDigest = Cell->canonicalDigest();
  }

  struct Corruption {
    const char *Name;
    void (*Apply)(std::vector<uint8_t> &);
  };
  const Corruption Cases[] = {
      {"truncated", [](std::vector<uint8_t> &I) { I.resize(I.size() / 2); }},
      {"bad magic", [](std::vector<uint8_t> &I) { I[0] ^= 0xFF; }},
      {"stale version",
       [](std::vector<uint8_t> &I) {
         // Header bytes 8..11 hold the little-endian format version.
         I[8] = 0xFE;
         I[9] = I[10] = I[11] = 0;
       }},
      {"payload corrupted",
       [](std::vector<uint8_t> &I) { I.back() ^= 0x01; }},
  };
  for (const Corruption &C : Cases) {
    std::vector<uint8_t> Bad = Pristine;
    C.Apply(Bad);
    writeFile(Path, Bad);

    snapshot::LoadResult Loaded = snapshot::loadFromDir(
        Dir.path(), javalib::CollectionModel::SoundModulo);
    EXPECT_FALSE(Loaded.ok()) << C.Name;
    EXPECT_FALSE(Loaded.Warning.empty()) << C.Name;

    // A session pointed at the broken store must warn, run the builders,
    // and produce the exact builder-path result.
    SessionOptions Options;
    Options.SnapshotDir = Dir.path();
    AnalysisSession Session(Options);
    testing::internal::CaptureStderr();
    CellResult Cell = Session.open(petstoreApp(), AnalysisKind::Mod2ObjH);
    std::string Stderr = testing::internal::GetCapturedStderr();
    ASSERT_TRUE(bool(Cell)) << C.Name << ": " << Cell.error().Message;
    EXPECT_NE(Stderr.find("falling back to builders"), std::string::npos)
        << C.Name << ": " << Stderr;
    AnalysisSession::CacheStats CS = Session.cacheStats();
    EXPECT_EQ(CS.SnapshotLoads, 0u) << C.Name;
    EXPECT_EQ(CS.SnapshotBuilds, 1u) << C.Name;
    EXPECT_EQ(Cell->canonicalDigest(), BuilderDigest) << C.Name;
  }
}

TEST(SnapshotStoreTest, LoadVsBuildDigestEqualityAcrossThreads) {
  TempDir Dir;
  snapshot::BaseProgram B =
      snapshot::buildBase(javalib::CollectionModel::SoundModulo);
  ASSERT_EQ(snapshot::saveToDir(Dir.path(), B,
                                javalib::CollectionModel::SoundModulo),
            "");

  for (unsigned Threads : {1u, 2u, 8u}) {
    SessionOptions BuildOptions;
    BuildOptions.DatalogThreads = Threads;
    BuildOptions.SolverThreads = Threads;
    SessionOptions LoadOptions = BuildOptions;
    LoadOptions.SnapshotDir = Dir.path();

    AnalysisSession Builder(BuildOptions);
    CellResult Built = Builder.open(petstoreApp(), AnalysisKind::Mod2ObjH);
    ASSERT_TRUE(bool(Built)) << Built.error().Message;

    AnalysisSession Mapped(LoadOptions);
    CellResult LoadedCell = Mapped.open(petstoreApp(), AnalysisKind::Mod2ObjH);
    ASSERT_TRUE(bool(LoadedCell)) << LoadedCell.error().Message;

    AnalysisSession::CacheStats CS = Mapped.cacheStats();
    EXPECT_EQ(CS.SnapshotLoads, 1u) << "threads=" << Threads;
    EXPECT_EQ(CS.SnapshotBuilds, 0u) << "threads=" << Threads;
    EXPECT_GT(CS.StoreBytes, 0u);

    EXPECT_EQ(Built->canonicalDigest(), LoadedCell->canonicalDigest())
        << "threads=" << Threads;
    EXPECT_EQ(explainAll(*Built), explainAll(*LoadedCell))
        << "threads=" << Threads;
    expectSameSemantics(Built->metrics(), LoadedCell->metrics());
  }
}

TEST(SnapshotStoreTest, EnvVarResolvesStoreDir) {
  TempDir Dir;
  snapshot::BaseProgram B =
      snapshot::buildBase(javalib::CollectionModel::SoundModulo);
  ASSERT_EQ(snapshot::saveToDir(Dir.path(), B,
                                javalib::CollectionModel::SoundModulo),
            "");

  EnvGuard Env("JACKEE_SNAPSHOT_DIR", Dir.path());
  AnalysisSession Session{SessionOptions{}};
  CellResult Cell = Session.open(petstoreApp(), AnalysisKind::Mod2ObjH);
  ASSERT_TRUE(bool(Cell)) << Cell.error().Message;
  AnalysisSession::CacheStats CS = Session.cacheStats();
  EXPECT_EQ(CS.SnapshotLoads, 1u);
  EXPECT_EQ(CS.SnapshotBuilds, 0u);
}

TEST(SnapshotStoreTest, MixedSourceMatrixDeterminism) {
  // The store holds ONLY the sound-modulo model, so a matrix that also
  // needs original-jdk8 interleaves mapped-store and builder snapshots.
  TempDir Dir;
  snapshot::BaseProgram B =
      snapshot::buildBase(javalib::CollectionModel::SoundModulo);
  ASSERT_EQ(snapshot::saveToDir(Dir.path(), B,
                                javalib::CollectionModel::SoundModulo),
            "");

  const std::vector<Application> Apps = {petstoreApp(),
                                         applicationFor(BenchApp::Pybbs)};
  const std::vector<AnalysisKind> Kinds = {AnalysisKind::CI,
                                           AnalysisKind::Mod2ObjH};

  std::vector<AnalysisResult> Reference;
  {
    AnalysisSession Session{SessionOptions{}};
    Reference = Session.runMatrix(Apps, Kinds);
  }

  for (unsigned Jobs : {1u, 4u}) {
    SessionOptions Options;
    Options.Jobs = Jobs;
    Options.SnapshotDir = Dir.path();
    AnalysisSession Session(Options);
    std::vector<AnalysisResult> Results = Session.runMatrix(Apps, Kinds);

    AnalysisSession::CacheStats CS = Session.cacheStats();
    EXPECT_EQ(CS.SnapshotLoads, 1u) << "jobs=" << Jobs;  // sound-modulo
    EXPECT_EQ(CS.SnapshotBuilds, 1u) << "jobs=" << Jobs; // original-jdk8

    ASSERT_EQ(Results.size(), Reference.size());
    for (size_t I = 0; I != Results.size(); ++I) {
      ASSERT_TRUE(bool(Results[I])) << Results[I].error().Message;
      ASSERT_TRUE(bool(Reference[I])) << Reference[I].error().Message;
      expectSameSemantics(*Results[I], *Reference[I]);
    }
  }
}

} // namespace
