//===- ir_test.cpp - Unit tests for the Java-like IR ----------------------===//
//
// Part of JackEE-CPP (PLDI'20 "Frameworks and Caches" reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Program.h"

#include <gtest/gtest.h>

using namespace jackee;
using namespace jackee::ir;

namespace {

/// Builds a small hierarchy shared by most tests:
///   Object <- A <- B <- C;  I (interface);  B implements I.
class IrTest : public ::testing::Test {
protected:
  IrTest() : P(Symbols) {
    Object = P.addClass("java.lang.Object", TypeKind::Class,
                        TypeId::invalid());
    P.addClass("java.lang.String", TypeKind::Class, Object);
    I = P.addClass("app.I", TypeKind::Interface, Object, {}, true, true);
    A = P.addClass("app.A", TypeKind::Class, Object, {}, false, true);
    B = P.addClass("app.B", TypeKind::Class, A, {I}, false, true);
    C = P.addClass("app.C", TypeKind::Class, B, {}, false, true);
  }

  SymbolTable Symbols;
  Program P;
  TypeId Object, I, A, B, C;
};

TEST_F(IrTest, FindType) {
  EXPECT_EQ(P.findType("app.A"), A);
  EXPECT_FALSE(P.findType("app.Nope").isValid());
}

TEST_F(IrTest, SubtypingIsReflexiveAndTransitive) {
  P.finalize();
  EXPECT_TRUE(P.isSubtype(A, A));
  EXPECT_TRUE(P.isSubtype(B, A));
  EXPECT_TRUE(P.isSubtype(C, A));
  EXPECT_TRUE(P.isSubtype(C, Object));
  EXPECT_FALSE(P.isSubtype(A, B));
}

TEST_F(IrTest, InterfaceSubtyping) {
  P.finalize();
  EXPECT_TRUE(P.isSubtype(B, I));
  EXPECT_TRUE(P.isSubtype(C, I)); // inherited through B
  EXPECT_FALSE(P.isSubtype(A, I));
  EXPECT_TRUE(P.isSubtype(I, Object));
}

TEST_F(IrTest, ArrayCovariance) {
  TypeId ArrA = P.addArrayType(A);
  TypeId ArrB = P.addArrayType(B);
  P.finalize();
  EXPECT_TRUE(P.isSubtype(ArrB, ArrA));
  EXPECT_FALSE(P.isSubtype(ArrA, ArrB));
  EXPECT_TRUE(P.isSubtype(ArrA, Object));
}

TEST_F(IrTest, ArrayTypesAreInterned) {
  EXPECT_EQ(P.addArrayType(A), P.addArrayType(A));
}

TEST_F(IrTest, ConcreteSubtypes) {
  P.finalize();
  // Concrete subtypes of A: A, B, C.
  EXPECT_EQ(P.concreteSubtypes(A).size(), 3u);
  // Interface I: B, C.
  EXPECT_EQ(P.concreteSubtypes(I).size(), 2u);
  // Interfaces themselves are never concrete.
  for (TypeId T : P.concreteSubtypes(I))
    EXPECT_TRUE(P.type(T).isConcreteClass());
}

TEST_F(IrTest, AbstractClassExcludedFromConcreteSubtypes) {
  TypeId Abs = P.addClass("app.Abs", TypeKind::Class, Object, {}, true, true);
  P.addClass("app.Impl", TypeKind::Class, Abs, {}, false, true);
  P.finalize();
  ASSERT_EQ(P.concreteSubtypes(Abs).size(), 1u);
  EXPECT_EQ(P.type(P.concreteSubtypes(Abs)[0]).Name,
            Symbols.lookup("app.Impl"));
}

TEST_F(IrTest, VirtualDispatchWalksSuperclasses) {
  // A.m() overridden in C but not B.
  MethodBuilder MA = P.addMethod(A, "m", {}, TypeId::invalid());
  MethodBuilder MC = P.addMethod(C, "m", {}, TypeId::invalid());
  P.finalize();

  Symbol Sig = P.signatureKey("m", {});
  EXPECT_EQ(P.resolveVirtual(A, Sig), MA.id());
  EXPECT_EQ(P.resolveVirtual(B, Sig), MA.id()); // inherited
  EXPECT_EQ(P.resolveVirtual(C, Sig), MC.id()); // overridden
}

TEST_F(IrTest, DispatchDistinguishesOverloadsByParams) {
  MethodBuilder M0 = P.addMethod(A, "f", {}, TypeId::invalid());
  MethodBuilder M1 = P.addMethod(A, "f", {Object}, TypeId::invalid());
  P.finalize();
  EXPECT_EQ(P.resolveVirtual(A, P.signatureKey("f", {})), M0.id());
  EXPECT_EQ(P.resolveVirtual(A, P.signatureKey("f", {Object})), M1.id());
}

TEST_F(IrTest, AbstractMethodDoesNotResolve) {
  P.addMethod(A, "g", {}, TypeId::invalid(), false, /*IsAbstract=*/true);
  P.finalize();
  EXPECT_FALSE(P.resolveVirtual(A, P.signatureKey("g", {})).isValid());
}

TEST_F(IrTest, UnknownSignatureDoesNotResolve) {
  P.finalize();
  EXPECT_FALSE(P.resolveVirtual(C, P.signatureKey("nothing", {})).isValid());
}

TEST_F(IrTest, MethodBuilderCreatesThisAndParams) {
  MethodBuilder MB = P.addMethod(B, "h", {A, I}, TypeId::invalid());
  const Method &M = P.method(MB.id());
  ASSERT_TRUE(M.This.isValid());
  EXPECT_EQ(P.variable(M.This).DeclaredType, B);
  ASSERT_EQ(M.Params.size(), 2u);
  EXPECT_EQ(P.variable(M.Params[0]).DeclaredType, A);
  EXPECT_EQ(P.variable(M.Params[1]).DeclaredType, I);
}

TEST_F(IrTest, StaticMethodHasNoThis) {
  MethodBuilder MB =
      P.addMethod(A, "s", {}, TypeId::invalid(), /*IsStatic=*/true);
  EXPECT_FALSE(P.method(MB.id()).This.isValid());
}

TEST_F(IrTest, AllocCreatesSite) {
  MethodBuilder MB = P.addMethod(A, "mk", {}, Object);
  VarId V = MB.local("v", Object);
  MB.alloc(V, B).ret(V);
  const Method &M = P.method(MB.id());
  ASSERT_EQ(M.Statements.size(), 2u);
  const Statement &S = M.Statements[0];
  EXPECT_EQ(S.Op, Opcode::Alloc);
  EXPECT_TRUE(S.Site.isValid());
  EXPECT_EQ(P.allocSite(S.Site).ObjectType, B);
  EXPECT_EQ(P.allocSite(S.Site).InMethod, MB.id());
  EXPECT_EQ(P.allocSite(S.Site).Kind, AllocKind::Heap);
}

TEST_F(IrTest, StringConstCarriesLiteral) {
  MethodBuilder MB = P.addMethod(A, "str", {}, TypeId::invalid());
  VarId V = MB.local("s", P.findType("java.lang.String"));
  MB.stringConst(V, "userService");
  const Statement &S = P.method(MB.id()).Statements[0];
  EXPECT_EQ(S.Op, Opcode::StringConst);
  EXPECT_EQ(Symbols.text(P.allocSite(S.Site).Label), "userService");
  EXPECT_EQ(P.allocSite(S.Site).Kind, AllocKind::StringConstant);
}

TEST_F(IrTest, CallsRecordInvokeSites) {
  MethodBuilder Callee = P.addMethod(A, "callee", {}, TypeId::invalid());
  (void)Callee;
  MethodBuilder MB = P.addMethod(A, "caller", {}, TypeId::invalid());
  MB.virtualCall(VarId::invalid(), MB.thisVar(), "callee", {}, {});
  const Statement &S = P.method(MB.id()).Statements[0];
  EXPECT_EQ(S.Op, Opcode::VirtualCall);
  ASSERT_TRUE(S.Invoke.isValid());
  EXPECT_EQ(P.invokeSite(S.Invoke).Caller, MB.id());
  EXPECT_EQ(S.CalleeSignature, P.signatureKey("callee", {}));
}

TEST_F(IrTest, SyntheticObjectsHaveNoMethod) {
  AllocSiteId S = P.addSyntheticObject(B, AllocKind::Mock, "mock B");
  EXPECT_FALSE(P.allocSite(S).InMethod.isValid());
  EXPECT_EQ(P.allocSite(S).Kind, AllocKind::Mock);
  EXPECT_EQ(P.allocSite(S).ObjectType, B);
}

TEST_F(IrTest, AnnotationsAttach) {
  P.annotateType(A, "org.springframework.stereotype.@Controller");
  MethodBuilder MB = P.addMethod(A, "m2", {}, TypeId::invalid());
  P.annotateMethod(MB.id(), "org.springframework.@RequestMapping");
  FieldId F = P.addField(A, "dep", I);
  P.annotateField(F, "@Autowired");

  EXPECT_EQ(P.type(A).Annotations.size(), 1u);
  EXPECT_EQ(P.method(MB.id()).Annotations.size(), 1u);
  EXPECT_EQ(P.field(F).Annotations.size(), 1u);
}

TEST_F(IrTest, FindFieldSearchesSuperclasses) {
  FieldId F = P.addField(A, "shared", Object);
  EXPECT_EQ(P.findField(C, "shared"), F);
  EXPECT_FALSE(P.findField(A, "absent").isValid());
}

TEST_F(IrTest, QualifiedName) {
  MethodBuilder MB = P.addMethod(B, "doGet", {}, TypeId::invalid());
  EXPECT_EQ(P.qualifiedName(MB.id()), "app.B.doGet");
}

TEST_F(IrTest, AppConcreteMethodPredicate) {
  MethodBuilder AppM = P.addMethod(A, "app", {}, TypeId::invalid());
  TypeId Lib = P.addClass("lib.L", TypeKind::Class, Object);
  MethodBuilder LibM = P.addMethod(Lib, "lib", {}, TypeId::invalid());
  MethodBuilder AbsM =
      P.addMethod(A, "abs", {}, TypeId::invalid(), false, true);
  EXPECT_TRUE(P.isAppConcreteMethod(AppM.id()));
  EXPECT_FALSE(P.isAppConcreteMethod(LibM.id()));
  EXPECT_FALSE(P.isAppConcreteMethod(AbsM.id()));
}

TEST_F(IrTest, RefinalizeAfterAddition) {
  P.finalize();
  EXPECT_TRUE(P.isSubtype(C, A));
  TypeId D = P.addClass("app.D", TypeKind::Class, C, {}, false, true);
  P.finalize();
  EXPECT_TRUE(P.isSubtype(D, A));
  EXPECT_EQ(P.concreteSubtypes(A).size(), 4u);
}

/// Property sweep: in a linear chain of depth N, the deepest type is a
/// subtype of all ancestors and concreteSubtypes counts match depth.
class ChainHierarchyTest : public ::testing::TestWithParam<int> {};

TEST_P(ChainHierarchyTest, LinearChainInvariants) {
  int Depth = GetParam();
  SymbolTable Symbols;
  Program P(Symbols);
  TypeId Root =
      P.addClass("java.lang.Object", TypeKind::Class, TypeId::invalid());
  std::vector<TypeId> Chain{Root};
  for (int I = 1; I <= Depth; ++I)
    Chain.push_back(P.addClass("app.T" + std::to_string(I), TypeKind::Class,
                               Chain.back(), {}, false, true));
  P.finalize();

  for (int I = 0; I <= Depth; ++I)
    for (int J = 0; J <= Depth; ++J)
      EXPECT_EQ(P.isSubtype(Chain[I], Chain[J]), I >= J);
  // Every type's concrete subtypes are the chain below (inclusive).
  for (int I = 0; I <= Depth; ++I)
    EXPECT_EQ(P.concreteSubtypes(Chain[I]).size(),
              static_cast<size_t>(Depth - I + 1));
}

INSTANTIATE_TEST_SUITE_P(Sweep, ChainHierarchyTest,
                         ::testing::Values(1, 2, 5, 10, 40));

} // namespace
