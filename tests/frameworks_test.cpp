//===- frameworks_test.cpp - Framework modeling tests ----------------------===//
//
// Part of JackEE-CPP (PLDI'20 "Frameworks and Caches" reproduction).
//
// Exercises the paper's Section 3 machinery end to end: rule-driven entry
// point discovery (subtyping, annotations, XML), the framework-independent
// mock policy, bean generation and dependency injection, and recursive
// getBean resolution.
//
//===----------------------------------------------------------------------===//

#include "frameworks/FrameworkLibrary.h"
#include "frameworks/FrameworkManager.h"
#include "javalib/JavaLibrary.h"

#include <gtest/gtest.h>

using namespace jackee;
using namespace jackee::ir;
using namespace jackee::javalib;
using namespace jackee::frameworks;
using namespace jackee::pointsto;

namespace {

/// Full pipeline fixture: library + framework API + app under test.
class PipelineTest : public ::testing::Test {
protected:
  PipelineTest()
      : DB(Symbols), P(Symbols), L(buildJavaLibrary(P, CollectionModel::SoundModulo)),
        F(buildFrameworkLibrary(P, L)), FM(P, DB) {}

  /// App class helper.
  TypeId appClass(std::string_view Name, TypeId Super,
                  std::vector<TypeId> Ifaces = {}, bool Abstract = false) {
    return P.addClass(Name, TypeKind::Class, Super, std::move(Ifaces),
                      Abstract, /*IsApplication=*/true);
  }

  /// Runs the full pipeline with default frameworks (unless \p BaselineOnly)
  /// and returns the solved analysis.
  std::unique_ptr<Solver> run(uint32_t K = 2, uint32_t H = 1,
                              bool BaselineOnly = false) {
    if (BaselineOnly)
      FM.addServletBaselineOnly();
    else
      FM.addDefaultFrameworks();
    P.finalize();
    std::string Err = FM.prepare();
    EXPECT_EQ(Err, "");
    auto S = std::make_unique<Solver>(P, SolverConfig{K, H});
    S->addPlugin(&FM);
    S->solve();
    return S;
  }

  bool pointsToType(const Solver &S, VarId V, std::string_view TypeName) {
    for (AllocSiteId Site : S.varPointsToSites(V)) {
      TypeId T = S.program().allocSite(Site).ObjectType;
      if (Symbols.text(P.type(T).Name) == TypeName)
        return true;
    }
    return false;
  }

  SymbolTable Symbols;
  datalog::Database DB;
  Program P;
  JavaLib L;
  FrameworkLib F;
  FrameworkManager FM;
};

TEST_F(PipelineTest, ServletSubtypingEntryPoint) {
  // class MainServlet extends HttpServlet { doGet(req, resp) { helper(); } }
  TypeId Servlet = appClass("com.app.MainServlet", F.HttpServlet);
  MethodBuilder Helper = P.addMethod(Servlet, "helper", {}, TypeId::invalid());
  MethodBuilder DoGet =
      P.addMethod(Servlet, "doGet",
                  {F.HttpServletRequest, F.HttpServletResponse},
                  TypeId::invalid());
  DoGet.virtualCall(VarId::invalid(), DoGet.thisVar(), "helper", {}, {});

  auto S = run();
  EXPECT_TRUE(S->isMethodReachable(DoGet.id()));
  EXPECT_TRUE(S->isMethodReachable(Helper.id()));
  // The request parameter is mocked with the concrete container impl.
  EXPECT_TRUE(pointsToType(*S, DoGet.param(0),
                           "org.apache.catalina.connector.RequestFacade"));
  // Discovered as a Servlet in the datalog layer.
  EXPECT_TRUE(DB.containsFact("Servlet", {"com.app.MainServlet"}));
  EXPECT_TRUE(DB.containsFact("EntryPointClass", {"com.app.MainServlet"}));
}

TEST_F(PipelineTest, SpringControllerAndAutowiredInjection) {
  // @Service class UserService { find() {...} }
  TypeId Svc = appClass("com.app.UserService", L.Object);
  P.annotateType(Svc, "org.springframework.stereotype.@Service");
  P.addMethod(Svc, "<init>", {}, TypeId::invalid());
  MethodBuilder Find = P.addMethod(Svc, "find", {}, L.Object);
  {
    VarId R = Find.local("r", L.Object);
    Find.alloc(R, L.Object).ret(R);
  }

  // @Controller class UserController { @Autowired UserService svc;
  //   @RequestMapping handle() { svc.find(); } }
  TypeId Ctl = appClass("com.app.UserController", L.Object);
  P.annotateType(Ctl, "org.springframework.stereotype.@Controller");
  P.addMethod(Ctl, "<init>", {}, TypeId::invalid());
  FieldId SvcF = P.addField(Ctl, "svc", Svc);
  P.annotateField(SvcF,
                  "org.springframework.beans.factory.annotation.@Autowired");
  MethodBuilder Handle = P.addMethod(Ctl, "handle", {}, TypeId::invalid());
  P.annotateMethod(Handle.id(),
                   "org.springframework.web.bind.annotation.@RequestMapping");
  {
    VarId SvcV = Handle.local("s", Svc);
    Handle.load(SvcV, Handle.thisVar(), SvcF)
        .virtualCall(VarId::invalid(), SvcV, "find", {}, {});
  }

  auto S = run();
  EXPECT_TRUE(S->isMethodReachable(Handle.id()));
  EXPECT_TRUE(S->isMethodReachable(Find.id()))
      << "injection must make the service reachable through the field";
  EXPECT_TRUE(DB.containsFact("Controller", {"com.app.UserController"}));
  EXPECT_TRUE(DB.containsFact("Bean", {"com.app.UserService"}));
  EXPECT_GE(FM.stats().InjectionsApplied, 1u);
}

TEST_F(PipelineTest, XmlBeanPropertyInjection) {
  // Repository + page bean wired purely through XML (paper Section 3.5).
  TypeId Repo = appClass("com.app.Repository", L.Object);
  P.addMethod(Repo, "<init>", {}, TypeId::invalid());
  MethodBuilder Query = P.addMethod(Repo, "query", {}, L.Object);
  {
    VarId R = Query.local("r", L.Object);
    Query.alloc(R, L.Object).ret(R);
  }

  TypeId Page = appClass("com.app.PageBean", L.Object);
  P.addMethod(Page, "<init>", {}, TypeId::invalid());
  FieldId RepoF = P.addField(Page, "repository", Repo);
  MethodBuilder Render = P.addMethod(
      Page, "render", {F.ServletRequest, F.ServletResponse},
      TypeId::invalid()); // request param => exercised entry point
  {
    VarId R = Render.local("r", Repo);
    Render.load(R, Render.thisVar(), RepoF)
        .virtualCall(VarId::invalid(), R, "query", {}, {});
  }

  ASSERT_EQ(FM.addConfigXml("beans.xml", R"(
    <beans>
      <bean id="pageBean" class="com.app.PageBean">
        <property name="repository" ref="repo"/>
      </bean>
      <bean id="repo" class="com.app.Repository"/>
    </beans>)"),
            "");

  auto S = run();
  EXPECT_TRUE(S->isMethodReachable(Render.id()));
  EXPECT_TRUE(S->isMethodReachable(Query.id()));
  EXPECT_TRUE(DB.containsFact("Bean", {"com.app.Repository"}));
  EXPECT_TRUE(DB.containsFact("Bean_Id", {"com.app.Repository", "repo"}));
}

TEST_F(PipelineTest, SpringSecurityAuthenticationProviderXml) {
  // The paper's Section 3.4 example: a custom provider registered via XML.
  TypeId Provider = appClass("com.app.CustomAuthenticationProvider", L.Object,
                             {F.AuthenticationProvider});
  P.addMethod(Provider, "<init>", {}, TypeId::invalid());
  MethodBuilder Auth = P.addMethod(Provider, "authenticate",
                                   {F.Authentication}, F.Authentication);
  Auth.ret(Auth.param(0));

  ASSERT_EQ(FM.addConfigXml("security.xml", R"(
    <beans>
      <bean id="customAuthenticationProvider"
            class="com.app.CustomAuthenticationProvider"/>
      <authentication-manager>
        <authentication-provider ref="customAuthenticationProvider"/>
      </authentication-manager>
    </beans>)"),
            "");

  auto S = run();
  EXPECT_TRUE(DB.containsFact("Interceptor",
                              {"com.app.CustomAuthenticationProvider"}));
  EXPECT_TRUE(S->isMethodReachable(Auth.id()));
  // The Authentication argument is mocked with the library token impl.
  EXPECT_TRUE(pointsToType(
      *S, Auth.param(0),
      "org.springframework.security.authentication."
      "UsernamePasswordAuthenticationToken"));
}

TEST_F(PipelineTest, WebXmlServletRegistration) {
  // Entry point visible only through web.xml (like alfresco's).
  TypeId Handler = appClass("com.app.LegacyHandler", F.HttpServlet);
  MethodBuilder DoPost =
      P.addMethod(Handler, "doPost",
                  {F.HttpServletRequest, F.HttpServletResponse},
                  TypeId::invalid());

  // A class NOT extending servlet types, registered purely in XML.
  TypeId XmlOnly = appClass("com.app.XmlOnlyComponent", L.Object);
  P.addMethod(XmlOnly, "<init>", {}, TypeId::invalid());
  MethodBuilder Run = P.addMethod(XmlOnly, "run", {}, TypeId::invalid());

  ASSERT_EQ(FM.addConfigXml("web.xml", R"(
    <web-app>
      <servlet>
        <servlet-name>legacy</servlet-name>
        <servlet-class>com.app.LegacyHandler</servlet-class>
      </servlet>
      <listener>
        <listener-class>com.app.XmlOnlyComponent</listener-class>
      </listener>
    </web-app>)"),
            "");

  auto S = run();
  EXPECT_TRUE(S->isMethodReachable(DoPost.id()));
  EXPECT_TRUE(S->isMethodReachable(Run.id()));
}

TEST_F(PipelineTest, GetBeanProgrammaticLookup) {
  // @Service bean retrieved programmatically by name from a controller.
  TypeId Mail = appClass("com.app.MailService", L.Object);
  P.annotateType(Mail, "org.springframework.stereotype.@Service");
  P.addMethod(Mail, "<init>", {}, TypeId::invalid());
  MethodBuilder Send = P.addMethod(Mail, "send", {}, TypeId::invalid());

  TypeId Ctl = appClass("com.app.JobController", L.Object);
  P.annotateType(Ctl, "org.springframework.stereotype.@Controller");
  P.addMethod(Ctl, "<init>", {}, TypeId::invalid());
  FieldId CtxF = P.addField(Ctl, "ctx", F.BeanFactory);
  MethodBuilder Handle = P.addMethod(Ctl, "handle", {}, TypeId::invalid());
  P.annotateMethod(Handle.id(),
                   "org.springframework.web.bind.annotation.@RequestMapping");
  {
    VarId Ctx = Handle.local("ctx", F.BeanFactory);
    VarId Name = Handle.local("name", L.String);
    VarId Obj = Handle.local("obj", L.Object);
    VarId Svc = Handle.local("svc", Mail);
    Handle.load(Ctx, Handle.thisVar(), CtxF)
        .stringConst(Name, "mailService")
        .virtualCall(Obj, Ctx, "getBean", {L.String}, {Name})
        .cast(Svc, Mail, Obj)
        .virtualCall(VarId::invalid(), Svc, "send", {}, {});
  }

  auto S = run();
  EXPECT_TRUE(S->isMethodReachable(Handle.id()));
  EXPECT_TRUE(S->isMethodReachable(Send.id()))
      << "getBean(\"mailService\") must resolve to the MailService bean";
  EXPECT_GE(FM.stats().GetBeanResolutions, 1u);
  EXPECT_GE(S->stats().PluginRounds, 2u)
      << "getBean requires the recursive rules/analysis loop";
}

TEST_F(PipelineTest, EjbBeansAndMessageDriven) {
  TypeId Dao = appClass("com.app.OrderDao", L.Object);
  P.annotateType(Dao, "javax.ejb.@Stateless");
  P.addMethod(Dao, "<init>", {}, TypeId::invalid());
  MethodBuilder Persist = P.addMethod(Dao, "persist", {}, TypeId::invalid());

  TypeId Mdb = appClass("com.app.OrderListener", L.Object,
                        {F.JmsMessageListener});
  P.annotateType(Mdb, "javax.ejb.@MessageDriven");
  P.addMethod(Mdb, "<init>", {}, TypeId::invalid());
  FieldId DaoF = P.addField(Mdb, "dao", Dao);
  P.annotateField(DaoF, "javax.ejb.@EJB");
  MethodBuilder OnMsg =
      P.addMethod(Mdb, "onMessage", {F.JmsMessage}, TypeId::invalid());
  {
    VarId D = OnMsg.local("d", Dao);
    OnMsg.load(D, OnMsg.thisVar(), DaoF)
        .virtualCall(VarId::invalid(), D, "persist", {}, {});
  }

  auto S = run();
  EXPECT_TRUE(DB.containsFact("Bean", {"com.app.OrderDao"}));
  EXPECT_TRUE(S->isMethodReachable(OnMsg.id()));
  EXPECT_TRUE(S->isMethodReachable(Persist.id()));
  // JMS message argument mocked with the ActiveMQ impl.
  EXPECT_TRUE(pointsToType(*S, OnMsg.param(0),
                           "org.apache.activemq.command.ActiveMQMessage"));
}

TEST_F(PipelineTest, JaxRsAnnotatedMethods) {
  TypeId Res = appClass("com.app.ItemResource", L.Object);
  P.addMethod(Res, "<init>", {}, TypeId::invalid());
  MethodBuilder GetM = P.addMethod(Res, "list", {}, L.Object);
  P.annotateMethod(GetM.id(), "javax.ws.rs.@GET");
  {
    VarId R = GetM.local("r", L.Object);
    GetM.alloc(R, L.Object).ret(R);
  }
  MethodBuilder Unrelated =
      P.addMethod(Res, "internal", {}, TypeId::invalid());

  auto S = run();
  EXPECT_TRUE(S->isMethodReachable(GetM.id()));
  EXPECT_TRUE(DB.containsFact("RESTResource", {"com.app.ItemResource"}));
  // Because the class is an EntryPointClass, its other concrete methods are
  // also exercised (framework-independent rule).
  EXPECT_TRUE(S->isMethodReachable(Unrelated.id()));
}

TEST_F(PipelineTest, StrutsActionExecute) {
  TypeId Action =
      appClass("com.app.CheckoutAction", F.StrutsActionSupport);
  P.addMethod(Action, "<init>", {}, TypeId::invalid());
  MethodBuilder Exec = P.addMethod(Action, "execute", {}, L.String);
  {
    VarId R = Exec.local("r", L.String);
    Exec.stringConst(R, "success").ret(R);
  }

  auto S = run();
  EXPECT_TRUE(S->isMethodReachable(Exec.id()));
  EXPECT_TRUE(DB.containsFact("EntryPointClass", {"com.app.CheckoutAction"}));
}

TEST_F(PipelineTest, BaselineMissesAnnotationEntryPoints) {
  // The same Spring controller as above, analyzed with the Doop baseline:
  // zero application coverage (paper Figure 4's Doop bars).
  TypeId Ctl = appClass("com.app.OnlyController", L.Object);
  P.annotateType(Ctl, "org.springframework.stereotype.@Controller");
  P.addMethod(Ctl, "<init>", {}, TypeId::invalid());
  MethodBuilder Handle = P.addMethod(Ctl, "handle", {}, TypeId::invalid());
  P.annotateMethod(Handle.id(),
                   "org.springframework.web.bind.annotation.@RequestMapping");

  auto S = run(2, 1, /*BaselineOnly=*/true);
  EXPECT_FALSE(S->isMethodReachable(Handle.id()));
  EXPECT_FALSE(DB.containsFact("EntryPointClass", {"com.app.OnlyController"}));
}

TEST_F(PipelineTest, BaselineStillSeesSubtypedServlets) {
  TypeId Servlet = appClass("com.app.PlainServlet", F.GenericServlet);
  MethodBuilder Service =
      P.addMethod(Servlet, "service", {F.ServletRequest, F.ServletResponse},
                  TypeId::invalid());

  auto S = run(2, 1, /*BaselineOnly=*/true);
  EXPECT_TRUE(S->isMethodReachable(Service.id()));
}

TEST_F(PipelineTest, MockObjectsAreSharedPerType) {
  // Two servlets with HttpServletRequest params: the one-mock-per-type rule
  // means both see the same abstract request object.
  TypeId S1 = appClass("com.app.S1", F.HttpServlet);
  MethodBuilder M1 = P.addMethod(
      S1, "doGet", {F.HttpServletRequest, F.HttpServletResponse},
      TypeId::invalid());
  TypeId S2 = appClass("com.app.S2", F.HttpServlet);
  MethodBuilder M2 = P.addMethod(
      S2, "doGet", {F.HttpServletRequest, F.HttpServletResponse},
      TypeId::invalid());

  auto S = run();
  std::vector<AllocSiteId> Req1 = S->varPointsToSites(M1.param(0));
  std::vector<AllocSiteId> Req2 = S->varPointsToSites(M2.param(0));
  ASSERT_FALSE(Req1.empty());
  EXPECT_EQ(Req1, Req2);
}

TEST_F(PipelineTest, CastBasedMockDiscovery) {
  // Entry method takes Object but casts to a concrete app type with no
  // other relation to the parameter type: the cast reveals the mock type.
  TypeId Payload = appClass("com.app.Payload", L.Object);
  P.addMethod(Payload, "<init>", {}, TypeId::invalid());
  MethodBuilder Process = P.addMethod(Payload, "process", {},
                                      TypeId::invalid());

  TypeId Res = appClass("com.app.GenericEndpoint", L.Object);
  P.addMethod(Res, "<init>", {}, TypeId::invalid());
  MethodBuilder Handle = P.addMethod(Res, "handle", {L.Object},
                                     TypeId::invalid());
  P.annotateMethod(Handle.id(), "javax.ws.rs.@POST");
  {
    VarId Cast = Handle.local("c", Payload);
    Handle.cast(Cast, Payload, Handle.param(0))
        .virtualCall(VarId::invalid(), Cast, "process", {}, {});
  }

  auto S = run();
  EXPECT_TRUE(S->isMethodReachable(Handle.id()));
  EXPECT_TRUE(pointsToType(*S, Handle.param(0), "com.app.Payload"));
  EXPECT_TRUE(S->isMethodReachable(Process.id()));
}

TEST_F(PipelineTest, ConstructorsOfMockedTypesRun) {
  // The mock's constructor initializes a field the entry point then reads —
  // the recursive constructor-exercising rule of Section 3.3.
  TypeId Dep = appClass("com.app.Dep", L.Object);
  P.addMethod(Dep, "<init>", {}, TypeId::invalid());
  MethodBuilder Work = P.addMethod(Dep, "work", {}, TypeId::invalid());

  TypeId Ctl = appClass("com.app.InitController", L.Object);
  P.annotateType(Ctl, "org.springframework.stereotype.@Controller");
  FieldId DepF = P.addField(Ctl, "dep", Dep);
  MethodBuilder Init = P.addMethod(Ctl, "<init>", {}, TypeId::invalid());
  {
    VarId D = Init.local("d", Dep);
    Init.alloc(D, Dep).store(Init.thisVar(), DepF, D);
  }
  MethodBuilder Handle = P.addMethod(Ctl, "handle", {}, TypeId::invalid());
  P.annotateMethod(Handle.id(),
                   "org.springframework.web.bind.annotation.@RequestMapping");
  {
    VarId D = Handle.local("d", Dep);
    Handle.load(D, Handle.thisVar(), DepF)
        .virtualCall(VarId::invalid(), D, "work", {}, {});
  }

  auto S = run();
  EXPECT_TRUE(S->isMethodReachable(Init.id()))
      << "constructor of the mocked controller must be exercised";
  EXPECT_TRUE(S->isMethodReachable(Work.id()))
      << "field state established by the constructor must be visible";
}

TEST_F(PipelineTest, CustomFrameworkRegistration) {
  // The extensibility claim: a new framework = a handful of rules.
  TypeId Job = appClass("com.app.NightlyJob", L.Object);
  P.annotateType(Job, "com.scheduler.@ScheduledJob");
  P.addMethod(Job, "<init>", {}, TypeId::invalid());
  MethodBuilder RunM = P.addMethod(Job, "run", {}, TypeId::invalid());

  ASSERT_EQ(FM.addRules("scheduler.dl", R"(
    EntryPointClass(class) :-
      ConcreteApplicationClass(class),
      Class_Annotation(class, "com.scheduler.@ScheduledJob").
  )"),
            "");

  auto S = run();
  EXPECT_TRUE(S->isMethodReachable(RunM.id()));
}

TEST_F(PipelineTest, UnreachableWithoutAnyFramework) {
  // Sanity: framework-discoverable code is NOT reachable if nothing marks
  // it (an app with no entry points at all).
  TypeId Lonely = appClass("com.app.Lonely", L.Object);
  MethodBuilder M = P.addMethod(Lonely, "m", {}, TypeId::invalid());

  auto S = run();
  EXPECT_FALSE(S->isMethodReachable(M.id()));
}

} // namespace

namespace {
TEST_F(PipelineTest, SpringSetterInjection) {
  // @Service bean injected through an @Autowired setter method — the
  // paper's "less common method injection".
  TypeId Svc = appClass("com.app.AuditService", L.Object);
  P.annotateType(Svc, "org.springframework.stereotype.@Service");
  P.addMethod(Svc, "<init>", {}, TypeId::invalid());
  MethodBuilder Log = P.addMethod(Svc, "log", {}, TypeId::invalid());

  TypeId Ctl = appClass("com.app.SetterController", L.Object);
  P.annotateType(Ctl, "org.springframework.stereotype.@Controller");
  P.addMethod(Ctl, "<init>", {}, TypeId::invalid());
  FieldId SvcF = P.addField(Ctl, "svc", Svc);
  MethodBuilder Setter =
      P.addMethod(Ctl, "setAuditService", {Svc}, TypeId::invalid());
  P.annotateMethod(Setter.id(),
                   "org.springframework.beans.factory.annotation.@Autowired");
  Setter.store(Setter.thisVar(), SvcF, Setter.param(0));

  MethodBuilder Handle = P.addMethod(Ctl, "handle", {}, TypeId::invalid());
  P.annotateMethod(Handle.id(),
                   "org.springframework.web.bind.annotation.@RequestMapping");
  {
    VarId S = Handle.local("s", Svc);
    Handle.load(S, Handle.thisVar(), SvcF)
        .virtualCall(VarId::invalid(), S, "log", {}, {});
  }

  auto S = run();
  EXPECT_TRUE(S->isMethodReachable(Setter.id()))
      << "the container must invoke the setter";
  EXPECT_TRUE(S->isMethodReachable(Log.id()))
      << "the setter-established field state must reach the handler";
}

} // namespace
