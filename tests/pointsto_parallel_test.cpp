//===- pointsto_parallel_test.cpp - Sharded-solver determinism ------------===//
//
// Part of JackEE-CPP (PLDI'20 "Frameworks and Caches" reproduction).
//
// The sharded worklist drain's contract (DESIGN.md §11): the fixpoint is
// bit-identical at every `SolverConfig::Threads` setting — points-to sets,
// call-graph edge *sequences*, reachability, cast records, solver stats,
// session metrics, and provenance explain trees all match the
// single-threaded run exactly. Sweeps cover fixed thread counts, randomized
// counts, and the `JACKEE_SOLVER_THREADS` resolution rules.
//
//===----------------------------------------------------------------------===//

#include "core/Report.h"
#include "core/Session.h"
#include "javalib/JavaLibrary.h"
#include "pointsto/Solver.h"
#include "provenance/Explain.h"
#include "synth/SynthApp.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <vector>

using namespace jackee;
using namespace jackee::ir;
using namespace jackee::pointsto;

namespace {

//===----------------------------------------------------------------------===//
// Solver-level sweeps
//===----------------------------------------------------------------------===//

/// A map-heavy library-client program: virtual dispatch through the real
/// HashMap model, so the sweep exercises reaction staging (call wiring at
/// the barrier), not just subset-edge propagation.
struct LibProgram {
  SymbolTable Symbols;
  std::unique_ptr<Program> P;
  MethodId Main;
};

std::unique_ptr<LibProgram> makeMapClientProgram(int Clients) {
  auto LP = std::make_unique<LibProgram>();
  LP->P = std::make_unique<Program>(LP->Symbols);
  Program &P = *LP->P;
  javalib::JavaLib L =
      javalib::buildJavaLibrary(P, javalib::CollectionModel::OriginalJdk8);
  TypeId AppTy =
      P.addClass("app.Main", TypeKind::Class, L.Object, {}, false, true);
  MethodBuilder Main = P.addMethod(AppTy, "main", {}, TypeId::invalid(), true);
  for (int I = 0; I != Clients; ++I) {
    std::string N = std::to_string(I);
    VarId M = Main.local("m" + N, L.HashMap);
    VarId K = Main.local("k" + N, L.String);
    VarId Got = Main.local("got" + N, L.Object);
    VarId Cast = Main.local("cast" + N, L.String);
    Main.alloc(M, L.HashMap)
        .specialCall(VarId::invalid(), M, L.HashMapInit, {})
        .stringConst(K, "key" + N)
        .virtualCall(VarId::invalid(), M, "put", {L.Object, L.Object}, {K, K})
        .virtualCall(Got, M, "get", {L.Object}, {K})
        .cast(Cast, L.String, Got);
  }
  P.finalize();
  LP->Main = Main.id();
  return LP;
}

/// Everything we can observe about a solved fixpoint, in canonical form.
/// Two runs are "bit-identical" iff their summaries compare equal.
struct FixpointSummary {
  std::vector<std::vector<AllocSiteId>> SitesByVar;
  std::vector<uint32_t> ReachableSeq; ///< CMethodId raw, insertion order
  std::vector<uint64_t> CallEdgeSeq;  ///< packed edges, insertion order
  std::vector<std::vector<std::vector<AllocSiteId>>> CastSites;
  uint64_t WorkItems, EdgesAdded, ReactionsRun, Rounds;
  uint32_t PluginRounds;
  uint64_t TuplesTotal;

  bool operator==(const FixpointSummary &O) const {
    return SitesByVar == O.SitesByVar && ReachableSeq == O.ReachableSeq &&
           CallEdgeSeq == O.CallEdgeSeq && CastSites == O.CastSites &&
           WorkItems == O.WorkItems && EdgesAdded == O.EdgesAdded &&
           ReactionsRun == O.ReactionsRun && Rounds == O.Rounds &&
           PluginRounds == O.PluginRounds && TuplesTotal == O.TuplesTotal;
  }
};

FixpointSummary solveAndSummarize(const Program &P, MethodId Main,
                                  uint32_t K, uint32_t H, unsigned Threads) {
  Solver S(P, SolverConfig{K, H, Threads});
  S.makeReachable(Main, S.contexts().empty());
  S.solve();

  FixpointSummary Sum;
  for (uint32_t VI = 0; VI != P.variableCount(); ++VI)
    Sum.SitesByVar.push_back(S.varPointsToSites(VarId(VI)));
  for (uint32_t CM : S.reachableCMethods())
    Sum.ReachableSeq.push_back(CM);
  for (uint64_t E : S.callGraphEdges())
    Sum.CallEdgeSeq.push_back(E);
  for (const Solver::CastRecord &C : S.castRecords()) {
    std::vector<std::vector<AllocSiteId>> PerInstance;
    for (NodeId N : C.SourceNodes) {
      std::vector<AllocSiteId> Sites;
      for (uint32_t Raw : S.pointsTo(N))
        Sites.push_back(S.valueSiteId(ValueId(Raw)));
      PerInstance.push_back(std::move(Sites));
    }
    Sum.CastSites.push_back(std::move(PerInstance));
  }
  Sum.WorkItems = S.stats().WorkItems;
  Sum.EdgesAdded = S.stats().EdgesAdded;
  Sum.ReactionsRun = S.stats().ReactionsRun;
  Sum.Rounds = S.stats().Rounds;
  Sum.PluginRounds = S.stats().PluginRounds;
  Sum.TuplesTotal = S.varPointsToTuplesTotal();
  return Sum;
}

TEST(SolverSweep, MapClients2ObjHBitIdenticalAcrossThreadCounts) {
  auto LP = makeMapClientProgram(12);
  FixpointSummary Base = solveAndSummarize(*LP->P, LP->Main, 2, 1, 1);
  ASSERT_GT(Base.TuplesTotal, 0u);
  ASSERT_FALSE(Base.CastSites.empty());
  for (unsigned Threads : {2u, 5u, 8u, 64u}) {
    SCOPED_TRACE("Threads=" + std::to_string(Threads));
    EXPECT_TRUE(solveAndSummarize(*LP->P, LP->Main, 2, 1, Threads) == Base);
  }
}

TEST(SolverSweep, MapClientsCIBitIdenticalAcrossThreadCounts) {
  auto LP = makeMapClientProgram(12);
  FixpointSummary Base = solveAndSummarize(*LP->P, LP->Main, 0, 0, 1);
  for (unsigned Threads : {2u, 8u}) {
    SCOPED_TRACE("Threads=" + std::to_string(Threads));
    EXPECT_TRUE(solveAndSummarize(*LP->P, LP->Main, 0, 0, Threads) == Base);
  }
}

TEST(SolverSweep, RandomizedThreadCountsMatchBaseline) {
  auto LP = makeMapClientProgram(8);
  FixpointSummary Base = solveAndSummarize(*LP->P, LP->Main, 2, 1, 1);

  // Determinism must hold at *any* worker count, so drawing the counts at
  // random is safe — record the seed so a failure is reproducible.
  unsigned Seed = std::random_device{}();
  RecordProperty("thread_sweep_seed", static_cast<int>(Seed));
  std::mt19937 Rng(Seed);
  std::uniform_int_distribution<unsigned> Dist(1, 32);
  for (int Draw = 0; Draw != 4; ++Draw) {
    unsigned Threads = Dist(Rng);
    SCOPED_TRACE("seed=" + std::to_string(Seed) +
                 " Threads=" + std::to_string(Threads));
    EXPECT_TRUE(solveAndSummarize(*LP->P, LP->Main, 2, 1, Threads) == Base);
  }
}

//===----------------------------------------------------------------------===//
// JACKEE_SOLVER_THREADS resolution
//===----------------------------------------------------------------------===//

/// Saves/restores one environment variable around a test body.
class EnvGuard {
public:
  explicit EnvGuard(const char *Name) : Name(Name) {
    if (const char *Old = std::getenv(Name))
      Saved = Old;
  }
  ~EnvGuard() {
    if (Saved)
      setenv(Name, Saved->c_str(), /*overwrite=*/1);
    else
      unsetenv(Name);
  }

private:
  const char *Name;
  std::optional<std::string> Saved;
};

unsigned resolvedThreads(unsigned Requested) {
  SymbolTable Symbols;
  Program P(Symbols);
  P.addClass("java.lang.Object", TypeKind::Class, TypeId::invalid());
  P.finalize();
  Solver S(P, SolverConfig{0, 0, Requested});
  return S.config().Threads;
}

TEST(ThreadResolution, ExplicitCountWinsOverEnvironment) {
  EnvGuard Guard("JACKEE_SOLVER_THREADS");
  ASSERT_EQ(setenv("JACKEE_SOLVER_THREADS", "12", 1), 0);
  EXPECT_EQ(resolvedThreads(2), 2u);
  EXPECT_EQ(resolvedThreads(1), 1u);
}

TEST(ThreadResolution, EnvironmentResolvesZero) {
  EnvGuard Guard("JACKEE_SOLVER_THREADS");
  ASSERT_EQ(setenv("JACKEE_SOLVER_THREADS", "5", 1), 0);
  EXPECT_EQ(resolvedThreads(0), 5u);
}

TEST(ThreadResolution, InvalidEnvironmentFallsBackToHardware) {
  EnvGuard Guard("JACKEE_SOLVER_THREADS");
  for (const char *Bad : {"abc", "0", "-3", "999"}) {
    ASSERT_EQ(setenv("JACKEE_SOLVER_THREADS", Bad, 1), 0);
    unsigned Resolved = resolvedThreads(0);
    SCOPED_TRACE(Bad);
    EXPECT_GE(Resolved, 1u);
    EXPECT_LE(Resolved, 256u);
  }
}

TEST(ThreadResolution, ExplicitCountIsClamped) {
  EnvGuard Guard("JACKEE_SOLVER_THREADS");
  unsetenv("JACKEE_SOLVER_THREADS");
  EXPECT_EQ(resolvedThreads(1000), 256u);
  EXPECT_GE(resolvedThreads(0), 1u); // hardware fallback
}

//===----------------------------------------------------------------------===//
// Session-level sweeps over the synthetic enterprise applications
//===----------------------------------------------------------------------===//

/// Wall-clock, RSS, and scheduling fields legitimately vary run to run or
/// with the thread count; everything else in `metricsToJson` must be
/// byte-identical across `SolverThreads` settings.
bool isVolatileMetricLine(const std::string &Line) {
  static const char *VolatileKeys[] = {
      "seconds",       "real_time",        "tuples_per_sec",
      "peak_rss",      "utilization",      "solver_threads",
      "pointsto.sched", "pointsto.shard.steals",
  };
  for (const char *Key : VolatileKeys)
    if (Line.find(Key) != std::string::npos)
      return true;
  return false;
}

std::string filteredMetricsJson(const core::Metrics &M) {
  std::istringstream In(core::metricsToJson(M));
  std::ostringstream Out;
  std::string Line;
  while (std::getline(In, Line))
    if (!isVolatileMetricLine(Line))
      Out << Line << '\n';
  return Out.str();
}

/// One session cell at a fixed solver worker count, with provenance
/// captured so explain trees can be compared too.
struct CellRun {
  core::Metrics M;
  std::string FilteredJson;
  std::string ExplainTrees;
};

CellRun runCell(const core::Application &App, core::AnalysisKind Kind,
                unsigned SolverThreads, bool Capture) {
  core::SessionOptions SO;
  SO.Jobs = 1;
  SO.DatalogThreads = 1; // isolate the solver as the only varying knob
  SO.SolverThreads = SolverThreads;
  core::AnalysisSession Session(SO);

  CellRun Run;
  if (!Capture) {
    core::AnalysisResult R = Session.run(App, Kind);
    EXPECT_TRUE(R.ok()) << R.error().Message;
    Run.M = *R;
  } else {
    core::CellResult Cell = Session.open(App, Kind);
    EXPECT_TRUE(Cell.ok()) << Cell.error().Message;
    if (Cell.ok()) {
      Run.M = Cell->metrics();
      std::string Error;
      std::vector<provenance::DerivationNode> Trees =
          Cell->explain("ExercisedEntryPoint", Error);
      EXPECT_EQ(Error, "");
      std::ostringstream Out;
      for (const provenance::DerivationNode &Tree : Trees)
        Out << provenance::Explainer::renderText(Tree) << '\n';
      Run.ExplainTrees = Out.str();
    }
  }
  Run.FilteredJson = filteredMetricsJson(Run.M);
  return Run;
}

void expectSameCell(const CellRun &Base, const CellRun &Other) {
  EXPECT_EQ(Base.FilteredJson, Other.FilteredJson);
  EXPECT_EQ(Base.ExplainTrees, Other.ExplainTrees);
  EXPECT_EQ(Base.M.CallGraphEdges, Other.M.CallGraphEdges);
  EXPECT_EQ(Base.M.ReachableMethodsTotal, Other.M.ReachableMethodsTotal);
  EXPECT_EQ(Base.M.AppReachableMethods, Other.M.AppReachableMethods);
  EXPECT_EQ(Base.M.AppPolyVCalls, Other.M.AppPolyVCalls);
  EXPECT_EQ(Base.M.AppMayFailCasts, Other.M.AppMayFailCasts);
  EXPECT_EQ(Base.M.VptTuplesTotal, Other.M.VptTuplesTotal);
  EXPECT_EQ(Base.M.VptTuplesJavaUtil, Other.M.VptTuplesJavaUtil);
  EXPECT_EQ(Base.M.EntryPointsExercised, Other.M.EntryPointsExercised);
  EXPECT_EQ(Base.M.BeansCreated, Other.M.BeansCreated);
  EXPECT_EQ(Base.M.InjectionsApplied, Other.M.InjectionsApplied);
  EXPECT_EQ(Base.M.SolverWorkItems, Other.M.SolverWorkItems);
  EXPECT_EQ(Base.M.SolverEdges, Other.M.SolverEdges);
  EXPECT_EQ(Base.M.SolverRounds, Other.M.SolverRounds);
}

TEST(SessionSweep, PetstoreMod2ObjHBitIdenticalIncludingExplainTrees) {
  core::Application App = synth::petstoreApp();
  CellRun Base = runCell(App, core::AnalysisKind::Mod2ObjH, 1, true);
  ASSERT_FALSE(Base.ExplainTrees.empty());
  EXPECT_EQ(Base.M.SolverThreads, 1u);
  for (unsigned Threads : {2u, 8u}) {
    SCOPED_TRACE("SolverThreads=" + std::to_string(Threads));
    CellRun Other = runCell(App, core::AnalysisKind::Mod2ObjH, Threads, true);
    EXPECT_EQ(Other.M.SolverThreads, Threads);
    expectSameCell(Base, Other);
  }
}

TEST(SessionSweep, WebGoat2ObjHBitIdentical) {
  core::Application App = synth::applicationFor(synth::BenchApp::WebGoat);
  CellRun Base = runCell(App, core::AnalysisKind::TwoObjH, 1, false);
  CellRun Other = runCell(App, core::AnalysisKind::TwoObjH, 8, false);
  expectSameCell(Base, Other);
}

TEST(SessionSweep, DacapoLikeCIBitIdentical) {
  core::Application App = synth::dacapoLikeApp();
  CellRun Base = runCell(App, core::AnalysisKind::CI, 1, false);
  CellRun Other = runCell(App, core::AnalysisKind::CI, 5, false);
  expectSameCell(Base, Other);
}

TEST(SessionSweep, RandomizedEnvThreadCountMatchesBaseline) {
  EnvGuard Guard("JACKEE_SOLVER_THREADS");

  unsigned Seed = std::random_device{}();
  RecordProperty("session_sweep_seed", static_cast<int>(Seed));
  std::mt19937 Rng(Seed);
  unsigned Threads = std::uniform_int_distribution<unsigned>(2, 16)(Rng);
  SCOPED_TRACE("seed=" + std::to_string(Seed) +
               " JACKEE_SOLVER_THREADS=" + std::to_string(Threads));

  core::Application App = synth::petstoreApp();
  unsetenv("JACKEE_SOLVER_THREADS");
  CellRun Base = runCell(App, core::AnalysisKind::TwoObjH, 1, false);

  // Resolve through the environment path, as the CI solver matrix does.
  ASSERT_EQ(setenv("JACKEE_SOLVER_THREADS",
                   std::to_string(Threads).c_str(), 1), 0);
  CellRun Other = runCell(App, core::AnalysisKind::TwoObjH, 0, false);
  EXPECT_EQ(Other.M.SolverThreads, Threads);
  expectSameCell(Base, Other);
}

} // namespace
