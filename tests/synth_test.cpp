//===- synth_test.cpp - Synthetic benchmark suite tests --------------------===//
//
// Part of JackEE-CPP (PLDI'20 "Frameworks and Caches" reproduction).
//
//===----------------------------------------------------------------------===//

#include "synth/SynthApp.h"

#include <gtest/gtest.h>

using namespace jackee;
using namespace jackee::core;
using namespace jackee::synth;

namespace {

/// Builds one app's program without running any analysis.
struct BuiltApp {
  SymbolTable Symbols;
  std::unique_ptr<ir::Program> P;
  javalib::JavaLib L;
  frameworks::FrameworkLib F;
  std::vector<std::pair<std::string, std::string>> Configs;
};

std::unique_ptr<BuiltApp> buildOnly(BenchApp App) {
  auto B = std::make_unique<BuiltApp>();
  B->P = std::make_unique<ir::Program>(B->Symbols);
  B->L = javalib::buildJavaLibrary(*B->P,
                                 javalib::CollectionModel::OriginalJdk8);
  B->F = frameworks::buildFrameworkLibrary(*B->P, B->L);
  Application A = applicationFor(App);
  B->Configs = A.Populate(*B->P, B->L, B->F);
  B->P->finalize();
  return B;
}

uint32_t appClassCount(const ir::Program &P) {
  uint32_t Count = 0;
  for (uint32_t I = 0; I != P.typeCount(); ++I)
    if (P.type(ir::TypeId(I)).IsApplication)
      ++Count;
  return Count;
}

TEST(SynthTest, AllBenchmarksBuildAndFinalize) {
  for (int I = 0; I != 8; ++I) {
    auto B = buildOnly(static_cast<BenchApp>(I));
    EXPECT_GT(appClassCount(*B->P), 10u);
  }
}

TEST(SynthTest, ProfilesMatchPaperSizeOrdering) {
  // Paper app-class ordering: alfresco > dotCMS > opencms > shopizer >
  // bitbucket > pybbs > SpringBlog ~ WebGoat.
  auto classCount = [](BenchApp App) {
    return appClassCount(*buildOnly(App)->P);
  };
  uint32_t Alfresco = classCount(BenchApp::Alfresco);
  uint32_t DotCms = classCount(BenchApp::DotCMS);
  uint32_t OpenCms = classCount(BenchApp::OpenCms);
  uint32_t Shopizer = classCount(BenchApp::Shopizer);
  uint32_t Bitbucket = classCount(BenchApp::Bitbucket);
  uint32_t Pybbs = classCount(BenchApp::Pybbs);
  uint32_t Blog = classCount(BenchApp::SpringBlog);
  EXPECT_GT(Alfresco, DotCms);
  EXPECT_GT(DotCms, OpenCms);
  EXPECT_GT(OpenCms, Shopizer);
  EXPECT_GT(Shopizer, Bitbucket);
  EXPECT_GT(Bitbucket, Pybbs);
  EXPECT_GT(Pybbs, Blog);
}

TEST(SynthTest, FrameworkMixMatchesProfiles) {
  // alfresco: XML-driven, no Spring controllers, no servlet subtypes.
  {
    auto B = buildOnly(BenchApp::Alfresco);
    EXPECT_FALSE(B->P->findType("app.web.Controller0").isValid());
    EXPECT_FALSE(B->P->findType("app.web.Servlet0").isValid());
    EXPECT_TRUE(B->P->findType("app.rest.Resource0").isValid());
    EXPECT_TRUE(B->P->findType("app.xml.Component0").isValid());
    bool HasBeansXml = false;
    for (auto &[Name, Text] : B->Configs)
      if (Name == "beans.xml")
        HasBeansXml = true;
    EXPECT_TRUE(HasBeansXml);
  }
  // pybbs: pure annotation-driven Spring, no XML configs at all.
  {
    auto B = buildOnly(BenchApp::Pybbs);
    EXPECT_TRUE(B->P->findType("app.web.Controller0").isValid());
    EXPECT_TRUE(B->Configs.empty());
  }
  // dotCMS: struts actions present.
  {
    auto B = buildOnly(BenchApp::DotCMS);
    EXPECT_TRUE(B->P->findType("app.action.Action0").isValid());
    bool HasStrutsXml = false;
    for (auto &[Name, Text] : B->Configs)
      if (Name == "struts.xml")
        HasStrutsXml = true;
    EXPECT_TRUE(HasStrutsXml);
  }
  // WebGoat: servlet-centric.
  {
    auto B = buildOnly(BenchApp::WebGoat);
    EXPECT_TRUE(B->P->findType("app.web.Servlet0").isValid());
    EXPECT_FALSE(B->P->findType("app.web.Controller0").isValid());
  }
}

TEST(SynthTest, GeneratedConfigsParse) {
  for (int I = 0; I != 8; ++I) {
    auto B = buildOnly(static_cast<BenchApp>(I));
    for (auto &[Name, Text] : B->Configs) {
      xml::ParseResult R = xml::Parser::parse(Text);
      EXPECT_TRUE(R.ok()) << profileFor(static_cast<BenchApp>(I)).Name << "/"
                          << Name << ": " << R.Error;
    }
  }
}

TEST(SynthTest, GenerationIsDeterministic) {
  auto A = buildOnly(BenchApp::Shopizer);
  auto B = buildOnly(BenchApp::Shopizer);
  EXPECT_EQ(A->P->typeCount(), B->P->typeCount());
  EXPECT_EQ(A->P->methodCount(), B->P->methodCount());
  EXPECT_EQ(A->P->variableCount(), B->P->variableCount());
  EXPECT_EQ(A->Configs, B->Configs);
  // Same names in the same order.
  for (uint32_t I = 0; I != A->P->typeCount(); ++I)
    EXPECT_EQ(
        A->Symbols.text(A->P->type(ir::TypeId(I)).Name),
        B->Symbols.text(B->P->type(ir::TypeId(I)).Name));
}

TEST(SynthTest, CustomProfileHook) {
  static SynthProfile Prof = profileFor(BenchApp::WebGoat);
  Prof.Name = "custom";
  Prof.Services = 2;
  Application App = applicationForProfile(Prof);
  EXPECT_EQ(App.Name, "custom");
  Metrics M = runAnalysis(App, AnalysisKind::CI).value();
  EXPECT_GT(M.AppReachableMethods, 0u);
}

TEST(SynthTest, DeadClassesStayDead) {
  Application App = applicationFor(BenchApp::SpringBlog);
  Metrics M = runAnalysis(App, AnalysisKind::Mod2ObjH).value();
  // The profile has dead classes; reachability must be strictly below 100%.
  EXPECT_LT(M.reachabilityPercent(), 100.0);
  EXPECT_GT(M.reachabilityPercent(), 30.0);
}

} // namespace
