//===- session_test.cpp - AnalysisSession snapshot-cache + matrix tests ----===//
//
// Part of JackEE-CPP (PLDI'20 "Frameworks and Caches" reproduction).
//
// Covers the batch analysis API: snapshot-clone equivalence (a cell served
// from a cloned cached snapshot is bit-identical to one that rebuilt the
// base program), cache-hit accounting, matrix determinism across job
// counts, error-path reporting, and metrics JSON serialization.
//
//===----------------------------------------------------------------------===//

#include "core/Report.h"
#include "core/Session.h"
#include "synth/SynthApp.h"

#include "gtest/gtest.h"

#include <random>
#include <string>
#include <vector>

using namespace jackee;
using namespace jackee::core;

namespace {

/// Every deterministic (non-wall-clock) metric must match. This is the
/// "bit-identical modulo time" contract of the snapshot cache and the
/// matrix driver.
void expectSameResults(const Metrics &A, const Metrics &B) {
  EXPECT_EQ(A.App, B.App);
  EXPECT_EQ(A.Analysis, B.Analysis);
  EXPECT_EQ(A.AppConcreteMethods, B.AppConcreteMethods);
  EXPECT_EQ(A.AppReachableMethods, B.AppReachableMethods);
  EXPECT_DOUBLE_EQ(A.AvgObjsPerVar, B.AvgObjsPerVar);
  EXPECT_DOUBLE_EQ(A.AvgObjsPerAppVar, B.AvgObjsPerAppVar);
  EXPECT_EQ(A.CallGraphEdges, B.CallGraphEdges);
  EXPECT_EQ(A.ReachableMethodsTotal, B.ReachableMethodsTotal);
  EXPECT_EQ(A.AppVirtualCallSites, B.AppVirtualCallSites);
  EXPECT_EQ(A.AppPolyVCalls, B.AppPolyVCalls);
  EXPECT_EQ(A.AppCasts, B.AppCasts);
  EXPECT_EQ(A.AppMayFailCasts, B.AppMayFailCasts);
  EXPECT_EQ(A.VptTuplesTotal, B.VptTuplesTotal);
  EXPECT_EQ(A.VptTuplesJavaUtil, B.VptTuplesJavaUtil);
  EXPECT_EQ(A.EntryPointsExercised, B.EntryPointsExercised);
  EXPECT_EQ(A.BeansCreated, B.BeansCreated);
  EXPECT_EQ(A.InjectionsApplied, B.InjectionsApplied);
  EXPECT_EQ(A.SolverWorkItems, B.SolverWorkItems);
  EXPECT_EQ(A.SolverEdges, B.SolverEdges);
  EXPECT_EQ(A.DatalogTuplesDerived, B.DatalogTuplesDerived);
  EXPECT_EQ(A.DatalogStrata, B.DatalogStrata);
}

/// An application whose Populate adds nothing and returns the given
/// configs — the minimal host for error-path tests.
Application emptyApp(
    std::string Name,
    std::vector<std::pair<std::string, std::string>> Configs = {}) {
  Application App;
  App.Name = std::move(Name);
  App.Populate = [Configs](ir::Program &, const javalib::JavaLib &,
                           const frameworks::FrameworkLib &) {
    return Configs;
  };
  return App;
}

TEST(SnapshotCacheTest, CloneEquivalentToFreshBuild) {
  Application App = synth::applicationFor(synth::BenchApp::WebGoat);

  SessionOptions Cached;
  Cached.Jobs = 1;
  Cached.DatalogThreads = 1;
  Cached.SnapshotCache = true;
  SessionOptions Fresh = Cached;
  Fresh.SnapshotCache = false;

  AnalysisSession CachedS(Cached), FreshS(Fresh);
  for (AnalysisKind Kind : {AnalysisKind::CI, AnalysisKind::TwoObjH,
                            AnalysisKind::Mod2ObjH}) {
    AnalysisResult A = CachedS.run(App, Kind);
    AnalysisResult B = FreshS.run(App, Kind);
    ASSERT_TRUE(A.ok());
    ASSERT_TRUE(B.ok());
    expectSameResults(*A, *B);
  }

  // The cached session built one snapshot per collection model (CI and
  // TwoObjH share OriginalJdk8) and cloned once per cell; the fresh
  // session never touched the cache.
  AnalysisSession::CacheStats CS = CachedS.cacheStats();
  EXPECT_EQ(CS.SnapshotBuilds, 2u);
  EXPECT_EQ(CS.SnapshotClones, 3u);
  EXPECT_EQ(CS.SnapshotHits, 1u); // second OriginalJdk8 cell
  AnalysisSession::CacheStats FS = FreshS.cacheStats();
  EXPECT_EQ(FS.SnapshotBuilds, 0u);
  EXPECT_EQ(FS.SnapshotClones, 0u);
}

TEST(SnapshotCacheTest, RunAnalysisWrapperMatchesSession) {
  Application App = synth::applicationFor(synth::BenchApp::Pybbs);
  PipelineOptions PO;
  PO.DatalogThreads = 1;
  Metrics Wrapper =
      runAnalysis(App, AnalysisKind::Mod2ObjH, {}, PO).value();

  SessionOptions SO;
  SO.Jobs = 1;
  SO.DatalogThreads = 1;
  AnalysisSession Session(SO);
  AnalysisResult Cell = Session.run(App, AnalysisKind::Mod2ObjH);
  ASSERT_TRUE(Cell.ok());
  expectSameResults(Wrapper, *Cell);
}

TEST(MatrixTest, CacheHitAccountingIsDeterministic) {
  std::vector<Application> Apps = {
      synth::applicationFor(synth::BenchApp::WebGoat),
      synth::applicationFor(synth::BenchApp::Pybbs)};
  std::vector<AnalysisKind> Kinds = {AnalysisKind::CI, AnalysisKind::TwoObjH,
                                     AnalysisKind::Mod2ObjH};

  for (unsigned Jobs : {1u, 4u}) {
    SessionOptions SO;
    SO.Jobs = Jobs;
    SO.DatalogThreads = 1;
    AnalysisSession Session(SO);
    std::vector<AnalysisResult> Results = Session.runMatrix(Apps, Kinds);
    ASSERT_EQ(Results.size(), 6u);
    for (const AnalysisResult &R : Results)
      ASSERT_TRUE(R.ok());

    // Two collection models: OriginalJdk8 (ci, 2objH) and SoundModulo
    // (mod-2objH). Exactly the first cell of each model in result order is
    // the miss — regardless of job count.
    AnalysisSession::CacheStats CS = Session.cacheStats();
    EXPECT_EQ(CS.SnapshotBuilds, 2u) << "jobs=" << Jobs;
    EXPECT_EQ(CS.SnapshotClones, 6u) << "jobs=" << Jobs;
    EXPECT_EQ(CS.SnapshotHits, 4u) << "jobs=" << Jobs;
    EXPECT_FALSE(Results[0]->SnapshotCacheHit); // webgoat/ci: OriginalJdk8
    EXPECT_TRUE(Results[1]->SnapshotCacheHit);  // webgoat/2objH
    EXPECT_FALSE(Results[2]->SnapshotCacheHit); // webgoat/mod: SoundModulo
    EXPECT_TRUE(Results[3]->SnapshotCacheHit);
    EXPECT_TRUE(Results[4]->SnapshotCacheHit);
    EXPECT_TRUE(Results[5]->SnapshotCacheHit);
    // Only the builder cells carry the build time.
    EXPECT_GT(Results[0]->SnapshotBuildSeconds, 0.0);
    EXPECT_EQ(Results[1]->SnapshotBuildSeconds, 0.0);
  }
}

/// The headline determinism contract, sweep-tested: the matrix at a
/// randomized job count is bit-identical (modulo wall clock) to the
/// sequential matrix.
class MatrixDeterminismSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(MatrixDeterminismSweep, ParallelMatchesSequential) {
  std::mt19937 Rng(GetParam());
  unsigned Jobs = 2 + Rng() % 5;

  std::vector<Application> Apps = {
      synth::applicationFor(synth::BenchApp::WebGoat),
      synth::applicationFor(synth::BenchApp::SpringBlog)};
  std::vector<AnalysisKind> Kinds = {AnalysisKind::CI,
                                     AnalysisKind::Mod2ObjH};

  SessionOptions Seq;
  Seq.Jobs = 1;
  Seq.DatalogThreads = 1;
  SessionOptions Par = Seq;
  Par.Jobs = Jobs;

  AnalysisSession SeqS(Seq), ParS(Par);
  std::vector<AnalysisResult> A = SeqS.runMatrix(Apps, Kinds);
  std::vector<AnalysisResult> B = ParS.runMatrix(Apps, Kinds);
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I != A.size(); ++I) {
    ASSERT_TRUE(A[I].ok());
    ASSERT_TRUE(B[I].ok());
    expectSameResults(*A[I], *B[I]);
    EXPECT_EQ(A[I]->SnapshotCacheHit, B[I]->SnapshotCacheHit)
        << "cell " << I << " at jobs=" << Jobs;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatrixDeterminismSweep,
                         ::testing::Range(1u, 7u));

TEST(AnalysisErrorTest, ConfigParse) {
  Application App = emptyApp(
      "badconfig", {{"broken.xml", "<beans><bean id=\"x\">"}});
  AnalysisResult R = runAnalysis(App, AnalysisKind::CI);
  ASSERT_FALSE(R.ok());
  EXPECT_FALSE(static_cast<bool>(R));
  EXPECT_EQ(R.error().Kind, AnalysisErrorKind::ConfigParse);
  EXPECT_NE(R.error().Message.find("broken.xml"), std::string::npos);
}

TEST(AnalysisErrorTest, RuleParse) {
  Application App = emptyApp("badrules");
  App.ExtraRules = {{"bad.dl", "this is not datalog ;;;"}};
  AnalysisResult R = runAnalysis(App, AnalysisKind::CI);
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.error().Kind, AnalysisErrorKind::RuleParse);
}

TEST(AnalysisErrorTest, Stratification) {
  // A relation negated inside its own recursive component cannot be
  // stratified.
  Application App = emptyApp("unstratifiable");
  App.ExtraRules = {{"spin.dl", R"(
    .decl Spin(c: symbol)
    Spin(class) :-
      ConcreteApplicationClass(class),
      !Spin(class).
  )"}};
  AnalysisResult R = runAnalysis(App, AnalysisKind::CI);
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.error().Kind, AnalysisErrorKind::Stratification);
  EXPECT_NE(R.error().Message.find("Spin"), std::string::npos);
}

TEST(AnalysisErrorTest, MainClassNotFound) {
  Application App = emptyApp("nomainclass");
  App.MainClass = "no.such.Class";
  AnalysisResult R = runAnalysis(App, AnalysisKind::CI);
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.error().Kind, AnalysisErrorKind::MainClassNotFound);
  EXPECT_NE(R.error().Message.find("no.such.Class"), std::string::npos);
}

TEST(AnalysisErrorTest, MainMethodNotFound) {
  Application App;
  App.Name = "nomainmethod";
  App.MainClass = "t.NoMain";
  App.Populate = [](ir::Program &P, const javalib::JavaLib &L,
                    const frameworks::FrameworkLib &) {
    ir::TypeId T = P.addClass("t.NoMain", ir::TypeKind::Class, L.Object, {},
                              false, true);
    P.addMethod(T, "<init>", {}, ir::TypeId::invalid());
    return std::vector<std::pair<std::string, std::string>>{};
  };
  AnalysisResult R = runAnalysis(App, AnalysisKind::CI);
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.error().Kind, AnalysisErrorKind::MainMethodNotFound);
}

TEST(AnalysisErrorTest, KindNames) {
  EXPECT_STREQ(analysisErrorKindName(AnalysisErrorKind::ConfigParse),
               "config-parse");
  EXPECT_STREQ(analysisErrorKindName(AnalysisErrorKind::RuleParse),
               "rule-parse");
  EXPECT_STREQ(analysisErrorKindName(AnalysisErrorKind::Stratification),
               "stratification");
  EXPECT_STREQ(analysisErrorKindName(AnalysisErrorKind::MainClassNotFound),
               "main-class-not-found");
  EXPECT_STREQ(analysisErrorKindName(AnalysisErrorKind::MainMethodNotFound),
               "main-method-not-found");
}

TEST(MatrixTest, ErrorCellsDoNotPoisonTheMatrix) {
  std::vector<Application> Apps = {
      synth::applicationFor(synth::BenchApp::WebGoat),
      emptyApp("badconfig", {{"broken.xml", "<beans><"}})};
  std::vector<AnalysisKind> Kinds = {AnalysisKind::CI};

  SessionOptions SO;
  SO.Jobs = 2;
  SO.DatalogThreads = 1;
  AnalysisSession Session(SO);
  std::vector<AnalysisResult> Results = Session.runMatrix(Apps, Kinds);
  ASSERT_EQ(Results.size(), 2u);
  EXPECT_TRUE(Results[0].ok());
  ASSERT_FALSE(Results[1].ok());
  EXPECT_EQ(Results[1].error().Kind, AnalysisErrorKind::ConfigParse);
}

TEST(MetricsJsonTest, ContainsEveryField) {
  Application App = synth::applicationFor(synth::BenchApp::WebGoat);
  PipelineOptions PO;
  PO.DatalogThreads = 1;
  Metrics M = runAnalysis(App, AnalysisKind::Mod2ObjH, {}, PO).value();
  std::string Json = metricsToJson(M, 2);

  for (const char *Key :
       {"\"name\": \"WebGoat/mod-2objH\"", "\"run_type\": \"iteration\"",
        "\"real_time\"", "\"time_unit\": \"s\"", "\"reach_percent\"",
        "\"avg_objs_per_var\"", "\"call_graph_edges\"",
        "\"app_poly_vcalls\"", "\"app_mayfail_casts\"",
        "\"vpt_tuples_total\"", "\"java_util_share\"",
        "\"datalog_threads\"", "\"snapshot_build_seconds\"",
        "\"populate_seconds\"", "\"total_seconds\"",
        "\"snapshot_cache_hit\""})
    EXPECT_NE(Json.find(Key), std::string::npos) << "missing " << Key;
  // Joinable rows: no trailing comma or newline.
  EXPECT_EQ(Json.back(), '}');
}

} // namespace
