//===- datalog_planner_test.cpp - Cost-guided join planner ----------------===//
//
// Part of JackEE-CPP (PLDI'20 "Frameworks and Caches" reproduction).
//
// The greedy planner must (a) pick the orders its cost model promises on
// hand-built rules with known cardinalities, (b) hoist guards to the
// earliest slot where their variables are bound, and (c) never change
// results: relation contents and work counters are identical between
// textual and greedy plans at every thread count. Also covers the
// empty-pass pruning fix in task building and the index accounting that
// feeds `observed.db.index_bytes`.
//
//===----------------------------------------------------------------------===//

#include "datalog/Database.h"
#include "datalog/Evaluator.h"
#include "datalog/Parser.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>
#include <set>
#include <string>
#include <vector>

using namespace jackee;
using namespace jackee::datalog;

namespace {

using Tuple = std::vector<uint32_t>;
using Contents = std::set<Tuple>;

Contents relationContents(const Database &DB, uint32_t Rel) {
  Contents Result;
  const Relation &R = DB.relation(RelationId(Rel));
  for (uint32_t T = 0; T != R.size(); ++T) {
    Tuple Tup;
    for (uint32_t C = 0; C != R.arity(); ++C)
      Tup.push_back(R.tuple(T)[C].rawValue());
    Result.insert(Tup);
  }
  return Result;
}

std::vector<Contents> allContents(const Database &DB) {
  std::vector<Contents> Result;
  for (uint32_t Rel = 0; Rel != DB.relationCount(); ++Rel)
    Result.push_back(relationContents(DB, Rel));
  return Result;
}

/// Parses \p RuleText, loads facts, runs with the given thread count and
/// plan mode, and returns all relation contents (plus stats if asked).
std::vector<Contents>
evaluateWith(unsigned Threads, PlanMode Plan, const char *RuleText,
             const std::function<void(Database &)> &LoadFacts,
             Evaluator::Stats *StatsOut = nullptr) {
  SymbolTable Symbols;
  Database DB(Symbols);
  RuleSet Rules;
  ParserResult PR = parseRules(DB, Rules, RuleText, "planner-test");
  EXPECT_TRUE(PR.Ok) << PR.Error;
  LoadFacts(DB);
  Evaluator Eval(DB, Rules, Threads, Plan);
  EXPECT_EQ(Eval.validate(), "");
  EXPECT_EQ(Eval.planMode(), Plan);
  Eval.run();
  if (StatsOut)
    *StatsOut = Eval.stats();
  return allContents(DB);
}

/// A three-way join spelled worst-first: the big relation drives textually,
/// while the greedy planner should start from the tiny filter.
constexpr const char *AdversarialJoinRules =
    ".decl big(a: symbol, b: symbol)\n"
    ".decl mid(b: symbol, c: symbol)\n"
    ".decl tiny(c: symbol)\n"
    ".decl q(a: symbol, c: symbol)\n"
    "q(a, c) :- big(a, b), mid(b, c), tiny(c).\n";

void loadAdversarialFacts(Database &DB, int Big, int Mid, int Tiny) {
  for (int I = 0; I != Big; ++I)
    DB.insertFact("big", {"a" + std::to_string(I % 37),
                          "b" + std::to_string(I % 11)});
  for (int I = 0; I != Mid; ++I)
    DB.insertFact("mid",
                  {"b" + std::to_string(I % 11), "c" + std::to_string(I)});
  for (int I = 0; I != Tiny; ++I)
    DB.insertFact("tiny", {"c" + std::to_string(I)});
}

/// Builds a rule over \p DB by hand: positive atoms only, one fresh
/// variable per distinct name. Convenience for direct makeJoinPlan tests.
struct RuleBuilder {
  Database &DB;
  Rule R;
  std::unordered_map<std::string, uint32_t> Vars;

  explicit RuleBuilder(Database &DB) : DB(DB) {}

  Term term(const std::string &Name) {
    if (!Name.empty() && Name[0] == '"')
      return Term::constant(DB.symbols().intern(Name));
    auto [It, New] = Vars.emplace(Name, R.VariableCount);
    if (New)
      ++R.VariableCount;
    return Term::variable(It->second);
  }

  Atom atom(const char *Rel, std::initializer_list<std::string> Terms,
            bool Negated = false) {
    Atom A;
    A.Rel = DB.find(Rel);
    EXPECT_TRUE(A.Rel.isValid()) << Rel;
    for (const std::string &T : Terms)
      A.Terms.push_back(term(T));
    A.Negated = Negated;
    return A;
  }
};

TEST(JoinPlanner, TextualModeKeepsBodyOrderAndDefersGuards) {
  SymbolTable Symbols;
  Database DB(Symbols);
  DB.declare("big", 2);
  DB.declare("mid", 2);
  DB.declare("tiny", 1);
  DB.declare("q", 2);

  RuleBuilder B(DB);
  B.R.Head = B.atom("q", {"a", "c"});
  B.R.Body.push_back(B.atom("big", {"a", "b"}));
  B.R.Body.push_back(B.atom("mid", {"b", "c"}));
  B.R.Body.push_back(B.atom("tiny", {"c"}));
  Constraint C;
  C.CompareKind = Constraint::Kind::NotEqual;
  C.Lhs = B.term("a");
  C.Rhs = B.term("c");
  B.R.Constraints.push_back(C);

  std::vector<uint32_t> Sizes = {1000, 50, 3, 0};
  PlanContext Ctx{PlanMode::Textual, Sizes, &DB};
  JoinPlan Plan = makeJoinPlan(B.R, /*DeltaAtom=*/-1, Ctx);
  EXPECT_EQ(Plan.PositiveOrder, (std::vector<uint32_t>{0, 1, 2}));
  EXPECT_EQ(Plan.ReorderDistance, 0u);
  EXPECT_EQ(Plan.GuardHoistDepth, 0u);
  // Every guard sits in the last slot, exactly the historical behavior.
  ASSERT_EQ(Plan.ConstraintsAt.size(), 4u);
  EXPECT_TRUE(Plan.ConstraintsAt[3].size() == 1 &&
              Plan.ConstraintsAt[0].empty() && Plan.ConstraintsAt[1].empty() &&
              Plan.ConstraintsAt[2].empty());

  // The no-context overload is the same textual plan.
  JoinPlan Legacy = makeJoinPlan(B.R, -1);
  EXPECT_EQ(Legacy.PositiveOrder, Plan.PositiveOrder);
  EXPECT_EQ(Legacy.BoundColumns, Plan.BoundColumns);
}

TEST(JoinPlanner, GreedyOrdersByEstimatedFanout) {
  SymbolTable Symbols;
  Database DB(Symbols);
  DB.declare("big", 2);
  DB.declare("mid", 2);
  DB.declare("tiny", 1);
  DB.declare("q", 2);

  RuleBuilder B(DB);
  B.R.Head = B.atom("q", {"a", "c"});
  B.R.Body.push_back(B.atom("big", {"a", "b"}));
  B.R.Body.push_back(B.atom("mid", {"b", "c"}));
  B.R.Body.push_back(B.atom("tiny", {"c"}));

  // tiny (3 tuples, unbound cost 3) < mid with c bound (sqrt(50) ~ 7) <
  // big with b bound (sqrt(1000) ~ 32): greedy runs the body backwards.
  std::vector<uint32_t> Sizes = {1000, 50, 3, 0};
  PlanContext Ctx{PlanMode::Greedy, Sizes, &DB};
  JoinPlan Plan = makeJoinPlan(B.R, /*DeltaAtom=*/-1, Ctx);
  EXPECT_EQ(Plan.PositiveOrder, (std::vector<uint32_t>{2, 1, 0}));
  EXPECT_EQ(Plan.ReorderDistance, 4u); // 2->0, 1->1, 0->2
  EXPECT_GT(Plan.EstimatedFanout, 0.0);

  // Bound columns follow the chosen order: mid joins on its second column
  // (c, bound by tiny), big on its second column (b, bound by mid).
  ASSERT_EQ(Plan.BoundColumns.size(), 3u);
  EXPECT_TRUE(Plan.BoundColumns[0].empty());
  EXPECT_EQ(Plan.BoundColumns[1], (std::vector<uint32_t>{1}));
  EXPECT_EQ(Plan.BoundColumns[2], (std::vector<uint32_t>{1}));

  // With equal sizes the first pick is a three-way tie, which must break
  // toward textual order (strict improvement only); big then binds both
  // of mid's join keys transitively, so greedy decays to the spelled body.
  std::vector<uint32_t> Flat = {10, 10, 10, 0};
  JoinPlan Tie = makeJoinPlan(B.R, -1, {PlanMode::Greedy, Flat, &DB});
  EXPECT_EQ(Tie.PositiveOrder, (std::vector<uint32_t>{0, 1, 2}));
  EXPECT_EQ(Tie.ReorderDistance, 0u);
}

TEST(JoinPlanner, DeltaAtomStaysPinnedFirst) {
  SymbolTable Symbols;
  Database DB(Symbols);
  DB.declare("edge", 2);
  DB.declare("tc", 2);

  RuleBuilder B(DB);
  B.R.Head = B.atom("tc", {"x", "z"});
  B.R.Body.push_back(B.atom("edge", {"x", "y"}));
  B.R.Body.push_back(B.atom("tc", {"y", "z"}));

  // Even though edge (5 tuples) is far smaller than tc (100000), the delta
  // atom must drive: semi-naive correctness wants every new tc tuple at
  // the join's root exactly once.
  std::vector<uint32_t> Sizes = {5, 100000};
  JoinPlan Plan = makeJoinPlan(B.R, /*DeltaAtom=*/1,
                               {PlanMode::Greedy, Sizes, &DB});
  EXPECT_EQ(Plan.PositiveOrder, (std::vector<uint32_t>{1, 0}));
  EXPECT_EQ(Plan.ReorderDistance, 0u);
}

TEST(JoinPlanner, FullyBoundAtomsBecomeExistenceProbes) {
  SymbolTable Symbols;
  Database DB(Symbols);
  DB.declare("pair", 2);
  DB.declare("allowed", 2);
  DB.declare("q", 2);

  RuleBuilder B(DB);
  B.R.Head = B.atom("q", {"x", "y"});
  B.R.Body.push_back(B.atom("allowed", {"x", "y"}));
  B.R.Body.push_back(B.atom("pair", {"x", "y"}));

  // After pair binds x and y, allowed is fully bound (cost 1) despite
  // being huge — greedy moves the small generator first and leaves the
  // big relation as a probe.
  std::vector<uint32_t> Sizes = {4, 500000, 0};
  JoinPlan Plan = makeJoinPlan(B.R, -1, {PlanMode::Greedy, Sizes, &DB});
  EXPECT_EQ(Plan.PositiveOrder, (std::vector<uint32_t>{1, 0}));
  ASSERT_EQ(Plan.BoundColumns.size(), 2u);
  EXPECT_EQ(Plan.BoundColumns[1], (std::vector<uint32_t>{0, 1}));
}

TEST(JoinPlanner, IndexStatsSharpenEstimates) {
  SymbolTable Symbols;
  Database DB(Symbols);
  RelationId Skewed = DB.declare("skewed", 2);
  DB.declare("uniform", 2);
  DB.declare("seedrel", 1);
  DB.declare("q", 1);

  // skewed: 16 tuples, ALL under one first-column key. The selectivity
  // heuristic guesses sqrt(16) = 4 per probe; the real postings list says
  // 16. uniform: 20 tuples, sqrt(20) ~ 4.5.
  for (int I = 0; I != 16; ++I)
    DB.insertFact("skewed", {"hub", "s" + std::to_string(I)});
  for (int I = 0; I != 20; ++I)
    DB.insertFact("uniform", {"u" + std::to_string(I), "v"});
  DB.insertFact("seedrel", {"hub"});

  RuleBuilder B(DB);
  B.R.Head = B.atom("q", {"x"});
  B.R.Body.push_back(B.atom("skewed", {"x", "s"}));
  B.R.Body.push_back(B.atom("uniform", {"x", "u"}));
  B.R.Body.push_back(B.atom("seedrel", {"x"}));

  std::vector<uint32_t> Sizes = {16, 20, 1, 0};
  // Without an index, the heuristic ranks skewed (4) ahead of uniform
  // (4.5) after seedrel binds x.
  JoinPlan Blind = makeJoinPlan(B.R, -1, {PlanMode::Greedy, Sizes, &DB});
  EXPECT_EQ(Blind.PositiveOrder, (std::vector<uint32_t>{2, 0, 1}));

  // Build the first-column index: now the planner KNOWS skewed fans out
  // 16 per key and demotes it behind uniform.
  std::vector<uint32_t> Col0 = {0};
  DB.relation(Skewed).ensureIndex(Col0);
  EXPECT_EQ(DB.relation(Skewed).distinctKeys(Col0), 1u);
  JoinPlan Informed = makeJoinPlan(B.R, -1, {PlanMode::Greedy, Sizes, &DB});
  EXPECT_EQ(Informed.PositiveOrder, (std::vector<uint32_t>{2, 1, 0}));
}

TEST(JoinPlanner, GuardsHoistToEarliestBoundSlot) {
  SymbolTable Symbols;
  Database DB(Symbols);
  DB.declare("gen", 2);
  DB.declare("other", 2);
  DB.declare("blocked", 1);
  DB.declare("q", 2);

  RuleBuilder B(DB);
  B.R.Head = B.atom("q", {"x", "z"});
  B.R.Body.push_back(B.atom("gen", {"x", "y"}));
  B.R.Body.push_back(B.atom("blocked", {"x"}, /*Negated=*/true));
  B.R.Body.push_back(B.atom("other", {"y", "z"}));
  Constraint C;
  C.CompareKind = Constraint::Kind::NotEqual;
  C.Lhs = B.term("x");
  C.Rhs = B.term("y");
  B.R.Constraints.push_back(C);

  // gen (3 tuples) goes first either way; the x != y constraint and the
  // !blocked(x) negation depend only on gen's variables, so greedy checks
  // them at slot 1 — before the `other` join — instead of slot 2.
  std::vector<uint32_t> Sizes = {3, 1000, 2, 0};
  JoinPlan Greedy = makeJoinPlan(B.R, -1, {PlanMode::Greedy, Sizes, &DB});
  ASSERT_EQ(Greedy.PositiveOrder.size(), 2u);
  EXPECT_EQ(Greedy.PositiveOrder[0], 0u);
  ASSERT_EQ(Greedy.ConstraintsAt.size(), 3u);
  EXPECT_EQ(Greedy.ConstraintsAt[1].size(), 1u);
  EXPECT_EQ(Greedy.NegationsAt[1].size(), 1u);
  EXPECT_EQ(Greedy.GuardHoistDepth, 2u); // two guards, one slot early each

  JoinPlan Textual = makeJoinPlan(B.R, -1, {PlanMode::Textual, Sizes, &DB});
  EXPECT_EQ(Textual.ConstraintsAt[2].size(), 1u);
  EXPECT_EQ(Textual.NegationsAt[2].size(), 1u);
  EXPECT_EQ(Textual.GuardHoistDepth, 0u);
}

TEST(JoinPlanner, PlanModeParsingAndEnvResolution) {
  PlanMode M = PlanMode::Auto;
  EXPECT_TRUE(parsePlanMode("textual", M));
  EXPECT_EQ(M, PlanMode::Textual);
  EXPECT_TRUE(parsePlanMode("greedy", M));
  EXPECT_EQ(M, PlanMode::Greedy);
  EXPECT_FALSE(parsePlanMode("fastest", M));
  EXPECT_STREQ(planModeName(PlanMode::Textual), "textual");
  EXPECT_STREQ(planModeName(PlanMode::Greedy), "greedy");

  // Explicit modes resolve to themselves regardless of the environment.
  ASSERT_EQ(setenv("JACKEE_PLAN", "textual", /*overwrite=*/1), 0);
  EXPECT_EQ(resolvePlanMode(PlanMode::Greedy), PlanMode::Greedy);
  EXPECT_EQ(resolvePlanMode(PlanMode::Auto), PlanMode::Textual);
  ASSERT_EQ(setenv("JACKEE_PLAN", "greedy", 1), 0);
  EXPECT_EQ(resolvePlanMode(PlanMode::Auto), PlanMode::Greedy);
  // Junk and absence both default to greedy.
  ASSERT_EQ(setenv("JACKEE_PLAN", "not-a-mode", 1), 0);
  EXPECT_EQ(resolvePlanMode(PlanMode::Auto), PlanMode::Greedy);
  ASSERT_EQ(unsetenv("JACKEE_PLAN"), 0);
  EXPECT_EQ(resolvePlanMode(PlanMode::Auto), PlanMode::Greedy);

  // The evaluator resolves Auto at construction.
  ASSERT_EQ(setenv("JACKEE_PLAN", "textual", 1), 0);
  SymbolTable Symbols;
  Database DB(Symbols);
  RuleSet Rules;
  ASSERT_TRUE(parseRules(DB, Rules, AdversarialJoinRules, "planner-test").Ok);
  Evaluator Auto(DB, Rules, /*Threads=*/1);
  EXPECT_EQ(Auto.planMode(), PlanMode::Textual);
  Evaluator Explicit(DB, Rules, 1, PlanMode::Greedy);
  EXPECT_EQ(Explicit.planMode(), PlanMode::Greedy);
  ASSERT_EQ(unsetenv("JACKEE_PLAN"), 0);
}

TEST(PassPruning, EmptyInputsEmitNoPasses) {
  // Two chained rules over an empty input: no pass can ever match, so no
  // pass may run. The historical task builder emitted one empty-drive
  // chunk per rule and counted it as a RuleEvaluation.
  constexpr const char *Chain = ".decl in(a: symbol)\n"
                                ".decl mid1(a: symbol)\n"
                                ".decl out(a: symbol)\n"
                                "mid1(x) :- in(x).\n"
                                "out(x) :- mid1(x).\n";
  for (unsigned Threads : {1u, 2u}) {
    Evaluator::Stats Stats;
    evaluateWith(Threads, PlanMode::Greedy, Chain,
                 [](Database &) {}, &Stats);
    EXPECT_EQ(Stats.RuleEvaluations, 0u) << "threads=" << Threads;
    EXPECT_EQ(Stats.TuplesDerived, 0u);
    EXPECT_GE(Stats.StratumCount, 1u);
  }

  // One seeded fact: exactly one pass per stratum (no delta passes — the
  // body atoms are not in their head's stratum).
  for (unsigned Threads : {1u, 2u}) {
    Evaluator::Stats Stats;
    evaluateWith(Threads, PlanMode::Textual, Chain,
                 [](Database &DB) { DB.insertFact("in", {"a"}); }, &Stats);
    EXPECT_EQ(Stats.RuleEvaluations, 2u) << "threads=" << Threads;
    EXPECT_EQ(Stats.TuplesDerived, 2u);
  }
}

TEST(PassPruning, WorkCountersMatchAcrossPlanModesAndThreads) {
  constexpr const char *Rules =
      ".decl edge(a: symbol, b: symbol)\n"
      ".decl tiny(c: symbol)\n"
      ".decl path(a: symbol, b: symbol)\n"
      ".decl capped(a: symbol, b: symbol)\n"
      "path(x, y) :- edge(x, y).\n"
      "path(x, z) :- path(x, y), edge(y, z).\n"
      "capped(x, y) :- path(x, y), tiny(y), x != y.\n";
  auto Load = [](Database &DB) {
    for (int I = 0; I + 1 < 24; ++I)
      DB.insertFact("edge",
                    {"n" + std::to_string(I), "n" + std::to_string(I + 1)});
    DB.insertFact("edge", {"n23", "n0"}); // cycle: several delta rounds
    DB.insertFact("tiny", {"n3"});
  };

  Evaluator::Stats Baseline;
  std::vector<Contents> Expected =
      evaluateWith(1, PlanMode::Textual, Rules, Load, &Baseline);
  for (PlanMode Mode : {PlanMode::Textual, PlanMode::Greedy}) {
    for (unsigned Threads : {1u, 2u, 8u}) {
      Evaluator::Stats Stats;
      std::vector<Contents> Got =
          evaluateWith(Threads, Mode, Rules, Load, &Stats);
      SCOPED_TRACE(std::string(planModeName(Mode)) + "/threads=" +
                   std::to_string(Threads));
      EXPECT_EQ(Got, Expected);
      EXPECT_EQ(Stats.RuleEvaluations, Baseline.RuleEvaluations);
      EXPECT_EQ(Stats.TuplesDerived, Baseline.TuplesDerived);
      EXPECT_EQ(Stats.StratumCount, Baseline.StratumCount);
      ASSERT_EQ(Stats.Strata.size(), Baseline.Strata.size());
      for (size_t I = 0; I != Stats.Strata.size(); ++I) {
        EXPECT_EQ(Stats.Strata[I].Rounds, Baseline.Strata[I].Rounds);
        EXPECT_EQ(Stats.Strata[I].RuleEvaluations,
                  Baseline.Strata[I].RuleEvaluations);
        EXPECT_EQ(Stats.Strata[I].TuplesDerived,
                  Baseline.Strata[I].TuplesDerived);
      }
    }
  }
}

TEST(PlanInvariance, AdversarialJoinIdenticalContents) {
  auto Load = [](Database &DB) { loadAdversarialFacts(DB, 2000, 110, 3); };
  std::vector<Contents> Expected =
      evaluateWith(1, PlanMode::Textual, AdversarialJoinRules, Load);
  for (PlanMode Mode : {PlanMode::Textual, PlanMode::Greedy})
    for (unsigned Threads : {1u, 2u, 8u}) {
      SCOPED_TRACE(std::string(planModeName(Mode)) + "/threads=" +
                   std::to_string(Threads));
      EXPECT_EQ(evaluateWith(Threads, Mode, AdversarialJoinRules, Load),
                Expected);
    }
}

TEST(PlanInvariance, ReRunsDeriveOnlyNewConsequences) {
  // The bean-wiring loop re-runs the evaluator after inserting facts; the
  // planner re-plans each round against the grown relations. Both modes
  // must converge to the same contents after every re-run. The recursive
  // rule also exercises the sequential postings walk under self-inserts
  // (head relation == indexed body relation).
  constexpr const char *Rules = ".decl edge(a: symbol, b: symbol)\n"
                                ".decl tc(a: symbol, b: symbol)\n"
                                "tc(x, y) :- edge(x, y).\n"
                                "tc(x, z) :- edge(x, y), tc(y, z).\n";
  for (PlanMode Mode : {PlanMode::Textual, PlanMode::Greedy}) {
    SymbolTable Symbols;
    Database DB(Symbols);
    RuleSet Rules1;
    ASSERT_TRUE(parseRules(DB, Rules1, Rules, "planner-test").Ok);
    DB.insertFact("edge", {"a", "a"}); // self loop: same-key inserts
    for (int I = 0; I != 40; ++I)
      DB.insertFact("edge", {"a", "s" + std::to_string(I)});
    Evaluator Eval(DB, Rules1, /*Threads=*/1, Mode);
    ASSERT_EQ(Eval.validate(), "");
    Eval.run();
    uint32_t AfterFirst = DB.relation(DB.find("tc")).size();
    EXPECT_EQ(AfterFirst, 41u);

    // New edges through the self-loop node: the re-run seed round joins
    // against the already-populated tc while inserting under key "a".
    for (int I = 0; I != 40; ++I)
      DB.insertFact("edge", {"s" + std::to_string(I), "a"});
    Eval.run();
    // Every node reaches every node through a: 41 sources x 41 targets.
    EXPECT_EQ(DB.relation(DB.find("tc")).size(), 41u * 41u);
  }
}

TEST(RelationStats, BytesCountIndexes) {
  SymbolTable Symbols;
  Database DB(Symbols);
  RelationId Rel = DB.declare("r", 2);
  for (int I = 0; I != 100; ++I)
    DB.insertFact("r", {"k" + std::to_string(I % 10), std::to_string(I)});

  Relation &R = DB.relation(Rel);
  size_t Before = R.bytes();
  EXPECT_EQ(R.indexBytes(), 0u);
  EXPECT_TRUE(R.indexStats().empty());

  std::vector<uint32_t> Col0 = {0};
  R.ensureIndex(Col0);
  // The index is real memory and bytes() must see it.
  EXPECT_GT(R.indexBytes(), 0u);
  EXPECT_EQ(R.bytes(), Before + R.indexBytes());
  EXPECT_GT(DB.indexBytes(), 0u);

  std::vector<Relation::IndexStats> Stats = R.indexStats();
  ASSERT_EQ(Stats.size(), 1u);
  EXPECT_EQ(Stats[0].Columns, Col0);
  EXPECT_EQ(Stats[0].DistinctKeys, 10u);
  EXPECT_GT(Stats[0].Bytes, 0u);
  EXPECT_EQ(Stats[0].Bytes, R.indexBytes());
  EXPECT_EQ(R.distinctKeys(Col0), 10u);
  std::vector<uint32_t> Col1 = {1};
  EXPECT_EQ(R.distinctKeys(Col1), 0u) << "unbuilt index reports no stats";

  // Inserts keep the index current and the accounting monotone.
  DB.insertFact("r", {"fresh", "fresh"});
  EXPECT_EQ(R.distinctKeys(Col0), 11u);
  EXPECT_GE(R.bytes(), R.indexBytes());
  EXPECT_EQ(R.indexStats().at(0).DistinctKeys, 11u);
}

} // namespace
