#!/usr/bin/env python3
"""Diff two `benchmark_cli --profile-out` JSON documents.

The deep profiler's determinism contract (DESIGN.md §14) splits every
profile field in two:

 - *deterministic* fields (rule passes/rounds/derivations/matches, relation
   tuple/live/dead counts and exact payload bytes, the entire points-to
   census, phase names and order) are bit-identical at any thread count and
   join-plan mode — this script compares them exactly and any mismatch is a
   hard failure (exit 1);
 - *volatile* fields (wall seconds, RSS, capacity-derived `*_approx` bytes,
   and the plan-dependent `tuples_considered` / `estimated_fanout` planner
   numbers) are compared against a relative threshold and only produce
   WARN lines — timing noise must not fail CI, but a big swing should be
   visible in the log.

Usage: profile_report.py BASELINE.json CURRENT.json [--threshold=0.5]

`--threshold` is the allowed relative change for volatile numeric fields
(default 0.5 = ±50%, generous because CI machines are noisy). The CI
profile-smoke job runs this warn-only (`|| true`); locally the exit code
distinguishes semantic regressions (1) from timing-only drift (0).
"""

import json
import sys

# Keys matching any of these substrings are volatile: thresholded, never
# exact-compared. Mirrors the field classification in observe/Profile.h.
VOLATILE_SUBSTRINGS = (
    "seconds",
    "rss",
    "_approx",
    "estimated_fanout",
    "tuples_considered",
)


def is_volatile(key: str) -> bool:
    return any(s in key for s in VOLATILE_SUBSTRINGS)


def keyed(items, *candidates):
    """Index a list of objects by the first present candidate key, falling
    back to the list position so plain arrays still line up."""
    for key in candidates:
        if all(isinstance(it, dict) and key in it for it in items):
            return {it[key]: it for it in items}, key
    return {i: it for i, it in enumerate(items)}, None


class Report:
    def __init__(self, threshold):
        self.threshold = threshold
        self.failures = 0
        self.warnings = 0

    def fail(self, path, msg):
        print(f"DIFFERS: {path}: {msg}")
        self.failures += 1

    def warn(self, path, msg):
        print(f"WARN: {path}: {msg}")
        self.warnings += 1

    def scalar(self, path, key, base, cur):
        if is_volatile(key):
            if isinstance(base, (int, float)) and isinstance(cur, (int, float)):
                denom = max(abs(base), 1e-9)
                rel = abs(cur - base) / denom
                if rel > self.threshold and abs(cur - base) > 1e-6:
                    self.warn(path, f"{base!r} -> {cur!r} "
                                    f"({100 * rel:.0f}% > ±{100 * self.threshold:.0f}%)")
            return
        if base != cur:
            self.fail(path, f"{base!r} != {cur!r}")

    def diff(self, path, key, base, cur):
        if type(base) is not type(cur) and not (
                isinstance(base, (int, float)) and isinstance(cur, (int, float))):
            self.fail(path, f"type {type(base).__name__} != {type(cur).__name__}")
            return
        if isinstance(base, dict):
            for k in sorted(set(base) | set(cur)):
                p = f"{path}.{k}"
                if k not in base:
                    self.fail(p, "only in current")
                elif k not in cur:
                    self.fail(p, "only in baseline")
                else:
                    self.diff(p, k, base[k], cur[k])
        elif isinstance(base, list):
            bmap, bkey = keyed(base, "label", "name", "prefix")
            cmap, _ = keyed(cur, "label", "name", "prefix")
            for k in list(bmap) + [k for k in cmap if k not in bmap]:
                p = f"{path}[{k}]"
                if k not in bmap:
                    self.fail(p, "only in current")
                elif k not in cmap:
                    self.fail(p, "only in baseline")
                else:
                    self.diff(p, key, bmap[k], cmap[k])
        else:
            self.scalar(path, key, base, cur)


def load_profiles(path):
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    profiles = doc.get("profiles", [doc] if isinstance(doc, dict) else doc)
    return {p.get("label", i): p for i, p in enumerate(profiles)}


def main(argv):
    threshold = 0.5
    args = []
    for a in argv[1:]:
        if a.startswith("--threshold="):
            threshold = float(a.split("=", 1)[1])
        else:
            args.append(a)
    if len(args) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    base = load_profiles(args[0])
    cur = load_profiles(args[1])

    rep = Report(threshold)
    for label in sorted(set(base) | set(cur), key=str):
        if label not in base:
            rep.fail(f"profile[{label}]", "only in current")
        elif label not in cur:
            rep.fail(f"profile[{label}]", "only in baseline")
        else:
            rep.diff(f"profile[{label}]", "", base[label], cur[label])

    if rep.failures:
        print(f"\n{rep.failures} deterministic difference(s), "
              f"{rep.warnings} timing warning(s)")
        return 1
    print(f"OK: {len(base)} profile(s) deterministically identical "
          f"({rep.warnings} timing warning(s), volatile fields thresholded "
          f"at ±{100 * threshold:.0f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
