#!/usr/bin/env python3
"""Compare a google-benchmark JSON run against a checked-in baseline.

Prints a per-benchmark table of baseline vs current time and warns — via
GitHub Actions `::warning::` annotations — on regressions beyond the
threshold (default 25%). Always exits 0: CI runners have noisy, varying
hardware, so the baselines track *trends*, they do not gate merges. Refresh
a baseline by copying a representative BENCH_*.json artifact over
bench/baselines/ when the workload intentionally changes.

Usage: compare_bench.py [--threshold=0.25] BASELINE.json CURRENT.json
"""

import json
import sys


def load(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    out = {}
    for entry in doc.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev) — compare raw iterations.
        if entry.get("run_type", "iteration") != "iteration":
            continue
        name = entry.get("name")
        time = entry.get("real_time")
        if name is not None and isinstance(time, (int, float)) and time > 0:
            out[name] = (time, entry.get("time_unit", "ns"))
    return out


def main(argv):
    threshold = 0.25
    args = []
    for arg in argv[1:]:
        if arg.startswith("--threshold="):
            threshold = float(arg.split("=", 1)[1])
        else:
            args.append(arg)
    if len(args) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    base_path, cur_path = args
    base = load(base_path)
    cur = load(cur_path)

    regressions = []
    width = max((len(n) for n in sorted(set(base) | set(cur))), default=4)
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  ratio")
    for name in sorted(set(base) | set(cur)):
        if name not in base:
            print(f"{name:<{width}}  {'--':>12}  (new, no baseline)")
            continue
        if name not in cur:
            print(f"{name:<{width}}  (missing from current run)")
            continue
        (bt, bu), (ct, cu) = base[name], cur[name]
        if bu != cu:
            print(f"{name:<{width}}  time units differ ({bu} vs {cu}), "
                  f"skipping")
            continue
        ratio = ct / bt
        flag = "  <-- REGRESSION" if ratio > 1.0 + threshold else ""
        print(f"{name:<{width}}  {bt:>10.3f}{bu:>2}  {ct:>10.3f}{cu:>2}  "
              f"{ratio:5.2f}x{flag}")
        if ratio > 1.0 + threshold:
            regressions.append((name, ratio))

    for name, ratio in regressions:
        print(f"::warning title=Benchmark regression::{name} is "
              f"{ratio:.2f}x the checked-in baseline "
              f"(threshold {1.0 + threshold:.2f}x)")
    if not regressions:
        print(f"\nno regressions beyond {100 * threshold:.0f}% "
              f"({len(cur)} benchmarks checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
