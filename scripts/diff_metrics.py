#!/usr/bin/env python3
"""Semantic diff of two benchmark_cli --benchmark_out JSON files.

The solver/evaluator determinism contract (DESIGN.md §11) says every
analysis answer is bit-identical at any JACKEE_SOLVER_THREADS /
JACKEE_THREADS setting — only wall-clock, RSS, and scheduling observables
may differ. This script enforces exactly that split: it compares the two
files' benchmark entries field by field, ignoring the volatile fields, and
exits non-zero on any semantic mismatch.

Usage: diff_metrics.py BASELINE.json OTHER.json
"""

import json
import sys

# Fields that legitimately vary run to run or with the worker count.
# Everything else must match exactly.
VOLATILE_SUBSTRINGS = (
    "seconds",          # real_time is seconds too, plus *_seconds phases
    "real_time",
    "tuples_per_sec",
    "peak_rss",
    "utilization",
    "solver_threads",
    "datalog_threads",
    "pointsto.sched",
    "pointsto.shard.steals",
    "worker_idle",
)


def is_volatile(key: str) -> bool:
    return any(s in key for s in VOLATILE_SUBSTRINGS)


def load_benchmarks(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    entries = doc.get("benchmarks", doc if isinstance(doc, list) else [doc])
    table = {}
    for entry in entries:
        name = entry.get("name", "<unnamed>")
        table[name] = {
            k: v for k, v in entry.items() if not is_volatile(k)
        }
    return table


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    base_path, other_path = argv[1], argv[2]
    base = load_benchmarks(base_path)
    other = load_benchmarks(other_path)

    failures = 0
    for name in sorted(set(base) | set(other)):
        if name not in base:
            print(f"DIFFERS: {name!r} only in {other_path}")
            failures += 1
            continue
        if name not in other:
            print(f"DIFFERS: {name!r} only in {base_path}")
            failures += 1
            continue
        b, o = base[name], other[name]
        for key in sorted(set(b) | set(o)):
            bv, ov = b.get(key, "<absent>"), o.get(key, "<absent>")
            if bv != ov:
                print(f"DIFFERS: {name} .{key}: {bv!r} != {ov!r}")
                failures += 1

    if failures:
        print(f"\n{failures} semantic difference(s) between "
              f"{base_path} and {other_path}")
        return 1
    print(f"OK: {len(base)} benchmark entr{'y' if len(base) == 1 else 'ies'} "
          f"semantically identical (volatile fields ignored)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
