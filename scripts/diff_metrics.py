#!/usr/bin/env python3
"""Semantic diff of two benchmark_cli --benchmark_out JSON files.

The solver/evaluator determinism contract (DESIGN.md §11) says every
analysis answer is bit-identical at any JACKEE_SOLVER_THREADS /
JACKEE_THREADS setting — only wall-clock, RSS, and scheduling observables
may differ. This script enforces exactly that split: it compares the two
files' benchmark entries field by field, ignoring the volatile fields, and
exits non-zero on any semantic mismatch.

Usage: diff_metrics.py [--incremental] BASELINE.json OTHER.json

With --incremental, effort counters are also ignored: an incremental
update (AnalysisCell::update, DESIGN.md §12) must reproduce the same
*answers* as a from-scratch analysis, but its delete/re-derive pass and
re-solve legitimately perform a different amount of work, and its
provenance/glue trails accumulate across epochs.
"""

import json
import sys

# Fields that legitimately vary run to run or with the worker count.
# Everything else must match exactly.
VOLATILE_SUBSTRINGS = (
    "seconds",          # real_time is seconds too, plus *_seconds phases
    "real_time",
    "tuples_per_sec",
    "peak_rss",
    "utilization",
    "solver_threads",
    "datalog_threads",
    "pointsto.sched",
    "pointsto.shard.steals",
    "worker_idle",
    "snapshot.load",    # session.snapshot.load_ns is wall-clock
    "profile.sink",     # event/byte counts vary with tracing and job
                        # interleaving (profile.census.* stays exact)
)

# Additionally volatile between a delta update and a cold analysis: pure
# effort/bookkeeping, never answers.
INCREMENTAL_VOLATILE_SUBSTRINGS = (
    "solver_rounds",
    "solver_work_items",
    "pointsto.",
    "datalog.",
    "datalog_tuples_derived",
    "datalog_strata",
    "provenance_tuples_recorded",
    "provenance_candidates_seen",
    "provenance_glue_events",
    "db.",                  # tombstoned slots change byte accounting
    "snapshot_cache_hit",
)

INCREMENTAL = False


def is_volatile(key: str) -> bool:
    if any(s in key for s in VOLATILE_SUBSTRINGS):
        return True
    return INCREMENTAL and any(
        s in key for s in INCREMENTAL_VOLATILE_SUBSTRINGS)


def load_benchmarks(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    entries = doc.get("benchmarks", doc if isinstance(doc, list) else [doc])
    table = {}
    for entry in entries:
        name = entry.get("name", "<unnamed>")
        table[name] = {
            k: v for k, v in entry.items() if not is_volatile(k)
        }
    return table


def main(argv):
    global INCREMENTAL
    args = [a for a in argv[1:] if a != "--incremental"]
    INCREMENTAL = len(args) != len(argv) - 1
    if len(args) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    base_path, other_path = args
    base = load_benchmarks(base_path)
    other = load_benchmarks(other_path)

    failures = 0
    for name in sorted(set(base) | set(other)):
        if name not in base:
            print(f"DIFFERS: {name!r} only in {other_path}")
            failures += 1
            continue
        if name not in other:
            print(f"DIFFERS: {name!r} only in {base_path}")
            failures += 1
            continue
        b, o = base[name], other[name]
        for key in sorted(set(b) | set(o)):
            bv, ov = b.get(key, "<absent>"), o.get(key, "<absent>")
            if bv != ov:
                print(f"DIFFERS: {name} .{key}: {bv!r} != {ov!r}")
                failures += 1

    if failures:
        print(f"\n{failures} semantic difference(s) between "
              f"{base_path} and {other_path}")
        return 1
    print(f"OK: {len(base)} benchmark entr{'y' if len(base) == 1 else 'ies'} "
          f"semantically identical (volatile fields ignored)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
